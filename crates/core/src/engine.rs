//! The distributed training engine: Algorithms 1–6 over the simulated
//! cluster.
//!
//! Execution is a sequence of synchronous supersteps per epoch:
//!
//! ```text
//! FP  (per layer l = 1..L):   pull W   | exchange H^{l-1} (l ≥ 2) | compute Z^l, H^l
//! loss:                       local masked softmax-CE → G^L
//! BP  (per layer l = L..2):   exchange G^l | compute Y^{l-1}, b-grad, G^{l-1}
//! BP  (l = 1):                compute Y^0, b-grad locally (Â·H⁰ is cached)
//! update:                     push gradients | servers apply Adam
//! ```
//!
//! Every worker's compute block is wall-clock measured; every message is
//! byte-counted through [`ec_comm::SimNetwork`]. The simulated epoch time
//! is `Σ supersteps (max-worker compute + network time)` — the quantity the
//! paper's Table IV reports per system.
//!
//! All compression/compensation policy lives in [`crate::fp`] /
//! [`crate::bp`]; the engine only routes matrices through them per the
//! configured [`FpMode`] / [`BpMode`].

#![allow(clippy::needless_range_loop)] // worker indices double as node ids

use crate::bp::{self, ResidualState};
use crate::config::{BpMode, FpMode, ModelKind, ResiliencePolicy, TrainingConfig};
use crate::context::{build_worker_contexts, WorkerContext};
use crate::exec;
use crate::fp::{self, TrendState};
use ec_comm::ps::CheckpointError;
use ec_comm::stats::Channel;
use ec_comm::{HostTimer, ParameterServerGroup, SendError, SimNetwork, TrafficStats};
use ec_graph_data::AttributedGraph;
use ec_partition::Partition;
use ec_tensor::{activations, ops, parallel, CsrMatrix, Matrix};
use ec_trace::registry::labels;
use ec_trace::{MetricId, SpanEvent, TelemetryLevel, TelemetryReport, TelemetrySink};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Size we charge for a `get`/`pull` request envelope (ids are exchanged
/// once during preprocessing; steady-state requests are tiny).
const REQUEST_BYTES: u64 = 16;

/// Compensation-strength constant `ρ` used when evaluating the Theorem 1
/// residual bound for telemetry (observation only).
const THEOREM1_RHO: f64 = 2.0;

/// Per-epoch outcome.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Global training loss (mean over all training vertices).
    pub loss: f32,
    /// Measured compute seconds (max-worker per superstep, summed).
    pub compute_s: f64,
    /// Simulated communication seconds.
    pub comm_s: f64,
    /// Traffic ledger for this epoch.
    pub traffic: TrafficStats,
    /// Forward-pass messages replaced by the ReqEC-FP prediction because
    /// the transfer kept failing (EC-degrade resilience policy).
    pub degraded: u64,
    /// Degraded messages whose final failed attempt was a drop.
    pub degraded_drop: u64,
    /// Degraded messages whose final failed attempt was a corruption.
    pub degraded_corrupt: u64,
}

impl EpochStats {
    /// Simulated wall-clock epoch time.
    pub fn sim_time(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// Accuracy snapshot over the three splits.
#[derive(Clone, Copy, Debug)]
pub struct Evaluation {
    /// Training-set accuracy.
    pub train: f64,
    /// Validation-set accuracy.
    pub val: f64,
    /// Held-out test accuracy.
    pub test: f64,
}

/// Preprocessing outcome (partition + feature caching).
#[derive(Clone, Copy, Debug, Default)]
pub struct PreprocessingStats {
    /// Seconds spent building worker contexts (measured).
    pub build_s: f64,
    /// Simulated seconds shipping remote features into the 1-hop caches.
    pub feature_cache_s: f64,
    /// Bytes of cached remote features.
    pub feature_cache_bytes: u64,
}

/// The EC-Graph distributed engine.
pub struct DistributedEngine {
    config: TrainingConfig,
    data: Arc<AttributedGraph>,
    adjs: Vec<Arc<CsrMatrix>>,
    contexts: Vec<WorkerContext>,
    ps: ParameterServerGroup,
    network: SimNetwork,
    preprocessing: PreprocessingStats,

    /// Persistent worker-block thread pool, built once from
    /// `config.compute` — superstep fan-outs reuse its lanes instead of
    /// spawning scoped threads per call.
    pool: exec::WorkerPool,
    /// Kernel-level thread budget resolved once alongside the pool.
    kernel_threads: usize,

    /// `h_local[w][l]` = local rows of `H^l` (`l = 0` is the features).
    h_local: Vec<Vec<Matrix>>,
    /// `z_local[w][l-1]` = local rows of the pre-activation `Z^l`.
    z_local: Vec<Vec<Matrix>>,
    /// Features concatenated with the cached remote features (layer-0
    /// topology) — built once, per the paper's first-hop cache.
    h0_cat: Vec<Matrix>,

    labels_local: Vec<Vec<u32>>,
    train_local: Vec<Vec<usize>>,
    total_train: usize,

    /// ReqEC-FP trend state per (requester, exchange layer, owner).
    /// `BTreeMap` keeps every walk over compensation state in key order, so
    /// identical runs touch identical state in an identical sequence.
    fp_trend: BTreeMap<(usize, usize, usize), TrendState>,
    /// Delayed-mode (DistGNN) stale caches per (requester, layer, owner).
    fp_cache: BTreeMap<(usize, usize, usize), Option<Matrix>>,
    /// Current adaptive bit width per (requester, owner).
    fp_bits: Vec<Vec<u8>>,
    /// Last observed predicted-proportion per (requester, owner), consumed
    /// by the Bit-Tuner at epoch end.
    fp_prop: BTreeMap<(usize, usize), f32>,
    /// ResEC-BP residual state per (requester, exchange layer, owner).
    bp_residual: BTreeMap<(usize, usize, usize), ResidualState>,

    /// Total L1 reconstruction error of all FP messages in the last epoch
    /// (diagnostics; exact modes report 0).
    fp_recon_err: f64,
    /// FP messages degraded to the prediction in the current epoch.
    fp_degraded: u64,
    /// Degraded FP messages split by the failure of their final attempt.
    fp_degraded_drop: u64,
    fp_degraded_corrupt: u64,

    epoch: usize,

    /// Observability sink. Recording is observation only: no training
    /// decision reads telemetry state back.
    telemetry: TelemetrySink,
    /// Simulated-seconds cursor trace spans are laid out on; advances by
    /// the same superstep times the run report sums.
    sim_now: f64,
    /// Empirical compression error `α` of the configured BP codec, probed
    /// once on synthetic matrices at build time (Theorem 1 gauge).
    alpha_probe: Option<f64>,
    /// Selector decision counts per exchange layer, current epoch only.
    fp_selected: BTreeMap<usize, [u64; 3]>,
    /// Host-measured codec pack/unpack seconds, current epoch only.
    pack_s: f64,
    unpack_s: f64,
    /// Summed worker barrier idle-wait seconds, current epoch only — the
    /// overlap headroom an async engine could reclaim. Observation only:
    /// derived from the same measured/scaled times the run report uses.
    epoch_idle_s: f64,
}

/// A complete in-memory image of the mutable training state: model
/// parameters with their Adam moments, the epoch counter, and every piece
/// of error-compensation memory (FP trend groups, delayed-mode caches,
/// adaptive bit widths, pending Bit-Tuner observations, BP residuals).
/// Restoring it into an engine built from the same inputs resumes training
/// with losses identical to the uninterrupted run — activations and
/// gradients are recomputed each epoch and need no snapshotting.
#[derive(Clone)]
pub struct EngineSnapshot {
    epoch: usize,
    sim_now: f64,
    ps_state: Vec<u8>,
    fp_trend: BTreeMap<(usize, usize, usize), TrendState>,
    fp_cache: BTreeMap<(usize, usize, usize), Option<Matrix>>,
    fp_bits: Vec<Vec<u8>>,
    fp_prop: BTreeMap<(usize, usize), f32>,
    bp_residual: BTreeMap<(usize, usize, usize), ResidualState>,
}

impl EngineSnapshot {
    /// The epoch count at capture time (number of completed epochs).
    pub fn epoch(&self) -> usize {
        self.epoch
    }
}

impl DistributedEngine {
    /// Builds the engine from per-layer global adjacencies and a partition.
    ///
    /// `adjs` must contain one `n × n` normalized adjacency per GNN layer
    /// (share the `Arc` for the standard full-batch setup).
    pub fn new(
        data: Arc<AttributedGraph>,
        adjs: Vec<Arc<CsrMatrix>>,
        partition: Partition,
        config: TrainingConfig,
    ) -> Self {
        let validated = config.validate();
        assert!(validated.is_ok(), "invalid training config: {validated:?}");
        let num_layers = config.num_layers();
        assert_eq!(adjs.len(), num_layers, "need one adjacency per layer");
        assert_eq!(config.dims[0], data.feature_dim(), "dims[0] must equal the feature dim");
        assert_eq!(
            config.dims[num_layers], data.num_classes,
            "output dim must equal the class count"
        );
        assert_eq!(partition.num_vertices(), data.num_vertices(), "partition size mismatch");
        assert_eq!(partition.num_parts(), config.num_workers, "partition/worker count mismatch");

        let build_start = HostTimer::start();
        let contexts = build_worker_contexts(&adjs, &partition);
        let build_s = build_start.elapsed_s();

        let num_workers = config.num_workers;
        let num_nodes = num_workers + config.num_servers;
        let mut network = SimNetwork::with_faults(num_nodes, config.network, config.faults.clone());
        // Sage carries a second (root/self) weight matrix per layer; the
        // servers store it at slot `L + l`.
        let mut shapes = config.layer_shapes();
        if config.model == ModelKind::Sage {
            shapes.extend(config.layer_shapes());
        }
        let ps = ParameterServerGroup::new(&shapes, config.num_servers, config.adam, config.seed);

        // Preprocessing: each worker caches the features of its layer-1
        // remote dependencies (the paper's first-hop cache).
        let mut h0_cat = Vec::with_capacity(num_workers);
        let mut h_local = Vec::with_capacity(num_workers);
        let mut labels_local = Vec::with_capacity(num_workers);
        let mut train_local = Vec::with_capacity(num_workers);
        let train_set: std::collections::HashSet<usize> =
            data.split.train.iter().copied().collect();
        for ctx in &contexts {
            let feats = data.features.gather_rows(&ctx.local_vertices);
            let topo0 = &ctx.layers[0];
            let remote_feats = data.features.gather_rows(&topo0.remote_deps);
            // Charge the one-time feature transfer, owner → this worker.
            for (owner, deps) in topo0.deps_by_owner.iter().enumerate() {
                if deps.is_empty() || owner == ctx.worker_id {
                    continue;
                }
                let bytes = (8 + deps.len() * (4 + data.feature_dim() * 4)) as u64;
                network.send(owner, ctx.worker_id, Channel::Forward, bytes);
            }
            h0_cat.push(feats.vstack(&remote_feats));
            h_local.push(vec![feats]);
            labels_local.push(ctx.local_vertices.iter().map(|&v| data.labels[v]).collect());
            train_local.push(
                ctx.local_vertices
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| train_set.contains(v))
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
        let (pre_traffic, feature_cache_s) = network.end_epoch();
        let preprocessing = PreprocessingStats {
            build_s,
            feature_cache_s,
            feature_cache_bytes: pre_traffic.total_bytes(),
        };

        // Allocate per-layer slots.
        for hl in &mut h_local {
            for l in 0..num_layers {
                let rows = hl[0].rows();
                hl.push(Matrix::zeros(rows, config.dims[l + 1]));
            }
        }
        let z_local = contexts
            .iter()
            .map(|ctx| {
                (0..num_layers)
                    .map(|l| Matrix::zeros(ctx.num_local(), config.dims[l + 1]))
                    .collect()
            })
            .collect();

        let init_bits = match config.fp_mode {
            FpMode::ReqEc { bits, .. } | FpMode::Compressed { bits } => bits,
            _ => 16,
        };
        let fp_bits = vec![vec![init_bits; num_workers]; num_workers];
        let total_train = data.split.train.len();
        assert!(total_train > 0, "dataset has no training vertices");

        // Probe the empirical compression-error bound α of the BP codec on
        // synthetic Gaussian matrices (worst over a few seeds). Used only
        // for the Theorem 1 bound gauge, never by training itself.
        let alpha_probe = match (config.telemetry.level > TelemetryLevel::Off, config.bp_mode) {
            (true, BpMode::ResEc { bits } | BpMode::Compressed { bits }) => Some(probe_alpha(bits)),
            _ => None,
        };
        let telemetry = TelemetrySink::new(&config.telemetry, num_workers);

        // Resolve the two-level thread budget once and stand up the
        // persistent worker pool; every superstep fan-out reuses it.
        let (worker_threads, kernel_threads) = config.compute.resolve(num_workers);
        let pool = exec::WorkerPool::new(worker_threads);

        Self {
            config,
            data,
            adjs,
            contexts,
            ps,
            network,
            preprocessing,
            pool,
            kernel_threads,
            h_local,
            z_local,
            h0_cat,
            labels_local,
            train_local,
            total_train,
            fp_trend: BTreeMap::new(),
            fp_cache: BTreeMap::new(),
            fp_bits,
            fp_prop: BTreeMap::new(),
            fp_recon_err: 0.0,
            fp_degraded: 0,
            fp_degraded_drop: 0,
            fp_degraded_corrupt: 0,
            bp_residual: BTreeMap::new(),
            epoch: 0,
            telemetry,
            sim_now: 0.0,
            alpha_probe,
            fp_selected: BTreeMap::new(),
            pack_s: 0.0,
            unpack_s: 0.0,
            epoch_idle_s: 0.0,
        }
    }

    /// Preprocessing statistics (partition-context build + feature cache).
    pub fn preprocessing(&self) -> PreprocessingStats {
        self.preprocessing
    }

    /// The configuration in force.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// The dataset being trained on.
    pub fn data(&self) -> &Arc<AttributedGraph> {
        &self.data
    }

    /// The per-layer normalized adjacencies.
    pub fn adjs(&self) -> &[Arc<CsrMatrix>] {
        &self.adjs
    }

    /// Detaches the current model parameters as a read-only
    /// [`crate::infer::ModelWeights`] — the inference entry point shared by
    /// [`Self::evaluate`] and the `ec-serve` serving layer. Pure forward
    /// queries never need a (mutable) training engine.
    pub fn inference_model(&self) -> crate::infer::ModelWeights {
        crate::infer::ModelWeights::from_parts(self.config.model, self.ps.weights())
    }

    /// Current epoch counter (number of completed epochs).
    pub fn epochs_run(&self) -> usize {
        self.epoch
    }

    /// Snapshot of the current model parameters.
    pub fn weights(&self) -> Vec<(Matrix, Vec<f32>)> {
        self.ps.weights()
    }

    /// Overwrites the model parameters (identical-start comparisons).
    pub fn set_weights(&mut self, weights: &[(Matrix, Vec<f32>)]) {
        self.ps.set_weights(weights);
    }

    /// Persists the current model weights to `path` (wire-codec format).
    pub fn save_checkpoint(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        self.ps.save_weights(path)
    }

    /// Restores model weights saved by [`Self::save_checkpoint`].
    pub fn load_checkpoint(&mut self, path: &std::path::Path) -> Result<(), CheckpointError> {
        self.ps.load_weights(path)
    }

    /// Captures the complete mutable training state — see
    /// [`EngineSnapshot`]. This is the checkpoint crash recovery restores
    /// from; unlike [`Self::save_checkpoint`] it includes the Adam moments
    /// and all error-compensation state, so the resumed loss curve matches
    /// the uninterrupted one exactly.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            epoch: self.epoch,
            sim_now: self.sim_now,
            ps_state: self.ps.state_bytes(),
            fp_trend: self.fp_trend.clone(),
            fp_cache: self.fp_cache.clone(),
            fp_bits: self.fp_bits.clone(),
            fp_prop: self.fp_prop.clone(),
            bp_residual: self.bp_residual.clone(),
        }
    }

    /// Restores a state captured by [`Self::snapshot`]. The engine must
    /// have been built from the same configuration (layer shapes are
    /// checked; graph/partition consistency is the caller's contract).
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] when the snapshot's parameter state
    /// does not match this engine's layer shapes.
    pub fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), CheckpointError> {
        self.ps.restore_state(&snapshot.ps_state)?;
        self.epoch = snapshot.epoch;
        self.fp_trend = snapshot.fp_trend.clone();
        self.fp_cache = snapshot.fp_cache.clone();
        self.fp_bits = snapshot.fp_bits.clone();
        self.fp_prop = snapshot.fp_prop.clone();
        self.bp_residual = snapshot.bp_residual.clone();
        self.fp_degraded = 0;
        self.fp_degraded_drop = 0;
        self.fp_degraded_corrupt = 0;
        self.fp_recon_err = 0.0;
        self.fp_selected.clear();
        self.sim_now = snapshot.sim_now;
        // The restored engine replays the rolled-back epochs and re-records
        // them; without the rewind every replayed row would double-count.
        self.telemetry.rewind_to_epoch(snapshot.epoch as u32);
        Ok(())
    }

    /// Current adaptive bit widths, `[requester][owner]`.
    pub fn fp_bits(&self) -> &[Vec<u8>] {
        &self.fp_bits
    }

    /// Squared L2 norms of all live ResEC-BP residuals, keyed by exchange
    /// layer (Theorem-1 instrumentation).
    pub fn bp_residual_norms(&self) -> Vec<(usize, f32)> {
        self.bp_residual.iter().map(|(&(_, layer, _), st)| (layer, st.residual_norm_sq())).collect()
    }

    /// Telemetry snapshot for the run report (`None` when the level is
    /// [`TelemetryLevel::Off`]).
    pub fn take_telemetry(&self) -> Option<TelemetryReport> {
        (self.telemetry.level() > TelemetryLevel::Off).then(|| self.telemetry.report())
    }

    /// Marks a crash rolled back at `epoch` on the telemetry timeline.
    /// Crash marks survive the rewind [`Self::restore`] performs — the
    /// replayed epochs re-record everything else, but the crash itself
    /// happens only once.
    pub fn telemetry_note_crash(&mut self, epoch: usize) {
        self.telemetry.note_crash(epoch as u32);
    }

    fn server_node(&self, s: usize) -> usize {
        self.config.num_workers + s
    }

    /// Straggler slowdown applied to worker `w`'s measured compute time
    /// (1.0 without fault injection).
    fn compute_factor(&self, w: usize) -> f64 {
        self.network.faults().map_or(1.0, |f| f.straggler_factor(w))
    }

    /// Records barrier idle-wait attribution for one superstep's replay
    /// pass: worker `w` waits `step_max - scaled[w]` simulated seconds
    /// at the superstep barrier. The epoch total accumulates
    /// unconditionally (it feeds the overlap-headroom gauge); the
    /// per-superstep gauge and `idle:wait` spans are gated on the
    /// telemetry level. `ss` is `None` for the loss step, which shares
    /// its superstep index with the first BP superstep — a per-superstep
    /// gauge row there would collide with that superstep's own row.
    fn record_superstep_idle(&mut self, t: usize, ss: Option<u32>, scaled: &[f64], step_max: f64) {
        let ss_level = self.telemetry.enabled(TelemetryLevel::Superstep);
        let trace = self.telemetry.enabled(TelemetryLevel::Trace);
        for (w, &s) in scaled.iter().enumerate() {
            let idle = step_max - s;
            if idle <= 0.0 {
                continue;
            }
            self.epoch_idle_s += idle;
            if let (Some(ss), true) = (ss, ss_level) {
                self.telemetry.set(
                    MetricId::TimelineIdleS,
                    labels(&[t as u32, ss, w as u32]),
                    idle,
                );
            }
            if trace {
                let track = self.telemetry.layout().worker(w);
                let mut ev = SpanEvent::new("idle:wait", "idle", track, self.sim_now + s, idle)
                    .at_epoch(t)
                    .at_worker(w);
                if let Some(ss) = ss {
                    ev = ev.at_superstep(ss);
                }
                self.telemetry.span(ev);
            }
        }
    }

    /// Emits `comm:pack` / `comm:unpack` spans covering the host-measured
    /// codec time this superstep added to the epoch accumulators.
    fn span_codec_delta(&mut self, t: usize, ss: u32, pack_before: f64, unpack_before: f64) {
        if !self.telemetry.enabled(TelemetryLevel::Trace) {
            return;
        }
        let track = self.telemetry.layout().network();
        for (name, dur) in [
            ("comm:pack", self.pack_s - pack_before),
            ("comm:unpack", self.unpack_s - unpack_before),
        ] {
            if dur > 0.0 {
                self.telemetry.span(
                    SpanEvent::new(name, "pack", track, self.sim_now, dur)
                        .at_epoch(t)
                        .at_superstep(ss),
                );
            }
        }
    }

    /// Runs one full training epoch (Algorithms 1 + 2).
    pub fn run_epoch(&mut self) -> EpochStats {
        let num_layers = self.config.num_layers();
        let num_workers = self.config.num_workers;
        let t = self.epoch;
        let mut compute_s = 0.0f64;
        let mut comm_s = 0.0f64;
        self.fp_recon_err = 0.0;
        self.fp_degraded = 0;
        self.fp_degraded_drop = 0;
        self.fp_degraded_corrupt = 0;
        self.fp_selected.clear();
        self.pack_s = 0.0;
        self.unpack_s = 0.0;
        self.epoch_idle_s = 0.0;

        let ss_level = self.telemetry.enabled(TelemetryLevel::Superstep);
        let trace = self.telemetry.enabled(TelemetryLevel::Trace);
        let epoch_start_sim = self.sim_now;
        // Within-epoch superstep index (FP layers, BP layers, the update).
        let mut ss: u32 = 0;

        // Intra-superstep parallelism: worker compute blocks fan out on the
        // engine's persistent pool, each using `kt`-way kernels. All
        // exchanges and accumulations are replayed in ascending worker
        // order afterwards, so results are bit-identical to the sequential
        // engine.
        let kt = self.kernel_threads;
        let factors: Vec<f64> = (0..num_workers).map(|w| self.compute_factor(w)).collect();

        // ---------------- Forward propagation ----------------
        let sage = self.config.model == ModelKind::Sage;
        for l in 1..=num_layers {
            // Workers pull W^{l-1}, b^{l-1} (and W_self for Sage).
            for w in 0..num_workers {
                let mut slots = vec![l - 1];
                if sage {
                    slots.push(num_layers + l - 1);
                }
                for slot in slots {
                    for (s, &bytes) in self.ps.pull_wire_sizes(slot).iter().enumerate() {
                        self.network.send(w, self.server_node(s), Channel::Control, REQUEST_BYTES);
                        self.network.send(self.server_node(s), w, Channel::Parameter, bytes);
                    }
                }
            }

            // Exchange H^{l-1} (layer-0 features are cached).
            let (pack_before, unpack_before) = (self.pack_s, self.unpack_s);
            let remotes: Vec<Option<Matrix>> = if l >= 2 {
                (0..num_workers).map(|i| Some(self.exchange_fp(i, l, t))).collect()
            } else {
                (0..num_workers).map(|_| None).collect()
            };
            self.span_codec_delta(t, ss, pack_before, unpack_before);
            let step_comm = self.network.flush_superstep();
            comm_s += step_comm;
            if trace {
                let track = self.telemetry.layout().network();
                self.telemetry.span(
                    SpanEvent::new("fp:exchange", "fp", track, self.sim_now, step_comm)
                        .at_epoch(t)
                        .at_layer(l)
                        .at_superstep(ss),
                );
            }
            if ss_level {
                self.telemetry.set(MetricId::SuperstepCommS, labels(&[t as u32, ss]), step_comm);
            }
            self.sim_now += step_comm;

            // Compute Z^l, H^l.
            let (w_l, b_l) = {
                let (w, b) = self.ps.pull(l - 1);
                (w.clone(), b.to_vec())
            };
            let w_self = sage.then(|| self.ps.pull(num_layers + l - 1).0.clone());
            let mut step_max = 0.0f64;
            let mut scaled_times = Vec::with_capacity(num_workers);
            let (results, fanout_s) = {
                let h_local = &self.h_local;
                let h0_cat = &self.h0_cat;
                let contexts = &self.contexts;
                exec::run_workers_timed(&self.pool, num_workers, |w| {
                    let start = HostTimer::start();
                    let h_cat = match &remotes[w] {
                        None => h0_cat[w].clone(),
                        Some(remote) => h_local[w][l - 1].vstack(remote),
                    };
                    let xw = parallel::matmul(&h_cat, &w_l, kt);
                    let mut z = parallel::spmm(&contexts[w].layers[l - 1].adj_local, &xw, kt);
                    if let Some(ws) = &w_self {
                        ops::add_assign(&mut z, &parallel::matmul(&h_local[w][l - 1], ws, kt));
                    }
                    z = ops::add_bias(&z, &b_l);
                    let h = if l < num_layers { activations::relu(&z) } else { z.clone() };
                    (h, z, start.elapsed_s())
                })
            };
            for (w, (h, z, secs)) in results.into_iter().enumerate() {
                self.h_local[w][l] = h;
                self.z_local[w][l - 1] = z;
                let scaled = secs * factors[w];
                scaled_times.push(scaled);
                step_max = step_max.max(scaled);
                if trace {
                    let track = self.telemetry.layout().worker(w);
                    self.telemetry.span(
                        SpanEvent::new("fp:compute", "fp", track, self.sim_now, scaled)
                            .at_epoch(t)
                            .at_layer(l)
                            .at_superstep(ss)
                            .at_worker(w),
                    );
                }
            }
            if trace && fanout_s > 0.0 {
                let track = self.telemetry.layout().engine();
                self.telemetry.span(
                    SpanEvent::new("exec:fanout", "exec", track, self.sim_now, fanout_s)
                        .at_epoch(t)
                        .at_layer(l)
                        .at_superstep(ss),
                );
            }
            self.record_superstep_idle(t, Some(ss), &scaled_times, step_max);
            compute_s += step_max;
            if ss_level {
                self.telemetry.set(MetricId::SuperstepComputeS, labels(&[t as u32, ss]), step_max);
            }
            self.sim_now += step_max;
            ss += 1;
        }

        // ---------------- Loss and G^L ----------------
        let mut loss_sum = 0.0f32;
        let mut g_cur: Vec<Matrix> = Vec::with_capacity(num_workers);
        let mut step_max = 0.0f64;
        let results = {
            let h_local = &self.h_local;
            let labels_local = &self.labels_local;
            let train_local = &self.train_local;
            let total_train = self.total_train;
            exec::run_workers(&self.pool, num_workers, |w| {
                let start = HostTimer::start();
                let (loss, g) = local_loss_grad(
                    &h_local[w][num_layers],
                    &labels_local[w],
                    &train_local[w],
                    total_train,
                );
                (loss, g, start.elapsed_s())
            })
        };
        let mut scaled_times = Vec::with_capacity(num_workers);
        for (w, (loss, g, secs)) in results.into_iter().enumerate() {
            loss_sum += loss;
            g_cur.push(g);
            let scaled = secs * factors[w];
            scaled_times.push(scaled);
            step_max = step_max.max(scaled);
            if trace {
                let track = self.telemetry.layout().worker(w);
                self.telemetry.span(
                    SpanEvent::new("loss:compute", "loss", track, self.sim_now, scaled)
                        .at_epoch(t)
                        .at_worker(w),
                );
            }
        }
        self.record_superstep_idle(t, None, &scaled_times, step_max);
        compute_s += step_max;
        self.sim_now += step_max;

        // Reference gradient magnitude for the Theorem 1 bound gauge
        // (‖G^L‖² summed over workers; observation only).
        let g_norm_sq: f64 = if self.telemetry.enabled(TelemetryLevel::Epoch) {
            g_cur
                .iter()
                .map(|g| g.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>())
                .sum()
        } else {
            0.0
        };

        // ---------------- Backward propagation ----------------
        let num_slots = if sage { 2 * num_layers } else { num_layers };
        let mut grads: Vec<Option<(Matrix, Vec<f32>)>> = vec![None; num_slots];
        for l in (2..=num_layers).rev() {
            // Exchange G^l.
            let (pack_before, unpack_before) = (self.pack_s, self.unpack_s);
            let g_remote: Vec<Matrix> =
                (0..num_workers).map(|i| self.exchange_bp(i, l, &g_cur)).collect();
            self.span_codec_delta(t, ss, pack_before, unpack_before);
            let step_comm = self.network.flush_superstep();
            comm_s += step_comm;
            if trace {
                let track = self.telemetry.layout().network();
                self.telemetry.span(
                    SpanEvent::new("bp:exchange", "bp", track, self.sim_now, step_comm)
                        .at_epoch(t)
                        .at_layer(l)
                        .at_superstep(ss),
                );
            }
            if ss_level {
                self.telemetry.set(MetricId::SuperstepCommS, labels(&[t as u32, ss]), step_comm);
            }
            self.sim_now += step_comm;

            let w_lm1 = self.ps.pull(l - 1).0.clone();
            let ws_lm1 = sage.then(|| self.ps.pull(num_layers + l - 1).0.clone());
            let mut step_max = 0.0f64;
            let mut scaled_times = Vec::with_capacity(num_workers);
            let mut y_sum = Matrix::zeros(self.config.dims[l - 1], self.config.dims[l]);
            let mut ys_sum = Matrix::zeros(self.config.dims[l - 1], self.config.dims[l]);
            let mut b_sum = vec![0.0f32; self.config.dims[l]];
            let (results, fanout_s) = {
                let h_local = &self.h_local;
                let z_local = &self.z_local;
                let contexts = &self.contexts;
                let g_cur = &g_cur;
                exec::run_workers_timed(&self.pool, num_workers, |w| {
                    let start = HostTimer::start();
                    let topo = &contexts[w].layers[l - 1];
                    let g_cat = g_cur[w].vstack(&g_remote[w]);
                    let ag = parallel::spmm(&topo.adj_local, &g_cat, kt);
                    // Y^{l-1} = (H^{l-1})ᵀ (Â G^l), summed over workers.
                    let y_part = parallel::matmul_at_b(&h_local[w][l - 1], &ag, kt);
                    let b_part = ops::column_sums(&g_cur[w]);
                    // Self path: Y_s^{l-1} = (H^{l-1})ᵀ G^l — purely local.
                    let ys_part =
                        sage.then(|| parallel::matmul_at_b(&h_local[w][l - 1], &g_cur[w], kt));
                    // G^{l-1} = [(Â G^l)(W^{l-1})ᵀ (+ G^l W_sᵀ)] ⊙ σ'(Z^{l-1}).
                    let mask = activations::relu_grad(&z_local[w][l - 2]);
                    let mut flow = parallel::matmul_a_bt(&ag, &w_lm1, kt);
                    if let Some(ws) = &ws_lm1 {
                        ops::add_assign(&mut flow, &parallel::matmul_a_bt(&g_cur[w], ws, kt));
                    }
                    let g_new = ops::hadamard(&flow, &mask);
                    (y_part, ys_part, b_part, g_new, start.elapsed_s())
                })
            };
            for (w, (y_part, ys_part, b_part, g_new, secs)) in results.into_iter().enumerate() {
                ops::add_assign(&mut y_sum, &y_part);
                for (acc, g) in b_sum.iter_mut().zip(b_part) {
                    *acc += g;
                }
                if let Some(ys_part) = ys_part {
                    ops::add_assign(&mut ys_sum, &ys_part);
                }
                g_cur[w] = g_new;
                let scaled = secs * factors[w];
                scaled_times.push(scaled);
                step_max = step_max.max(scaled);
                if trace {
                    let track = self.telemetry.layout().worker(w);
                    self.telemetry.span(
                        SpanEvent::new("bp:compute", "bp", track, self.sim_now, scaled)
                            .at_epoch(t)
                            .at_layer(l)
                            .at_superstep(ss)
                            .at_worker(w),
                    );
                }
            }
            if trace && fanout_s > 0.0 {
                let track = self.telemetry.layout().engine();
                self.telemetry.span(
                    SpanEvent::new("exec:fanout", "exec", track, self.sim_now, fanout_s)
                        .at_epoch(t)
                        .at_layer(l)
                        .at_superstep(ss),
                );
            }
            self.record_superstep_idle(t, Some(ss), &scaled_times, step_max);
            compute_s += step_max;
            if ss_level {
                self.telemetry.set(MetricId::SuperstepComputeS, labels(&[t as u32, ss]), step_max);
            }
            self.sim_now += step_max;
            ss += 1;
            grads[l - 1] = Some((y_sum, b_sum));
            if sage {
                grads[num_layers + l - 1] = Some((ys_sum, vec![0.0; self.config.dims[l]]));
            }
        }

        // Layer 1: Â·H⁰ is computable locally from the feature cache.
        {
            let mut step_max = 0.0f64;
            let mut scaled_times = Vec::with_capacity(num_workers);
            let mut y_sum = Matrix::zeros(self.config.dims[0], self.config.dims[1]);
            let mut ys_sum = Matrix::zeros(self.config.dims[0], self.config.dims[1]);
            let mut b_sum = vec![0.0f32; self.config.dims[1]];
            let (results, fanout_s) = {
                let h_local = &self.h_local;
                let h0_cat = &self.h0_cat;
                let contexts = &self.contexts;
                let g_cur = &g_cur;
                exec::run_workers_timed(&self.pool, num_workers, |w| {
                    let start = HostTimer::start();
                    let topo = &contexts[w].layers[0];
                    let ah0 = parallel::spmm(&topo.adj_local, &h0_cat[w], kt);
                    let y_part = parallel::matmul_at_b(&ah0, &g_cur[w], kt);
                    let ys_part =
                        sage.then(|| parallel::matmul_at_b(&h_local[w][0], &g_cur[w], kt));
                    let b_part = ops::column_sums(&g_cur[w]);
                    (y_part, ys_part, b_part, start.elapsed_s())
                })
            };
            for (w, (y_part, ys_part, b_part, secs)) in results.into_iter().enumerate() {
                ops::add_assign(&mut y_sum, &y_part);
                if let Some(ys_part) = ys_part {
                    ops::add_assign(&mut ys_sum, &ys_part);
                }
                for (acc, g) in b_sum.iter_mut().zip(b_part) {
                    *acc += g;
                }
                let scaled = secs * factors[w];
                scaled_times.push(scaled);
                step_max = step_max.max(scaled);
                if trace {
                    let track = self.telemetry.layout().worker(w);
                    self.telemetry.span(
                        SpanEvent::new("bp:compute", "bp", track, self.sim_now, scaled)
                            .at_epoch(t)
                            .at_layer(1)
                            .at_superstep(ss)
                            .at_worker(w),
                    );
                }
            }
            if trace && fanout_s > 0.0 {
                let track = self.telemetry.layout().engine();
                self.telemetry.span(
                    SpanEvent::new("exec:fanout", "exec", track, self.sim_now, fanout_s)
                        .at_epoch(t)
                        .at_layer(1)
                        .at_superstep(ss),
                );
            }
            self.record_superstep_idle(t, Some(ss), &scaled_times, step_max);
            compute_s += step_max;
            if ss_level {
                self.telemetry.set(MetricId::SuperstepComputeS, labels(&[t as u32, ss]), step_max);
            }
            self.sim_now += step_max;
            ss += 1;
            grads[0] = Some((y_sum, b_sum));
            if sage {
                grads[num_layers] = Some((ys_sum, vec![0.0; self.config.dims[1]]));
            }
        }

        // ---------------- Push gradients, server update ----------------
        // Each worker pushes its share; the aggregate equals the global
        // gradient, so we push the summed gradient once and charge each
        // worker's wire cost.
        for w in 0..num_workers {
            for (s, &bytes) in self.ps.push_wire_sizes().iter().enumerate() {
                self.network.send(w, self.server_node(s), Channel::Parameter, bytes);
            }
        }
        let grads: Vec<(Matrix, Vec<f32>)> = grads.into_iter().flatten().collect();
        assert_eq!(grads.len(), num_slots, "every gradient slot must be filled before the push");
        self.ps.push(&grads);
        self.ps.apply_update();
        let step_comm = self.network.flush_superstep();
        comm_s += step_comm;
        if trace {
            let track = self.telemetry.layout().network();
            self.telemetry.span(
                SpanEvent::new("update:push", "update", track, self.sim_now, step_comm)
                    .at_epoch(t)
                    .at_superstep(ss),
            );
        }
        if ss_level {
            self.telemetry.set(MetricId::SuperstepCommS, labels(&[t as u32, ss]), step_comm);
        }
        self.sim_now += step_comm;

        // Adaptive Bit-Tuner (after the last FP exchange of the epoch).
        if let FpMode::ReqEc { adaptive: true, .. } = self.config.fp_mode {
            self.apply_bit_tuner(t);
        }

        if trace {
            let track = self.telemetry.layout().engine();
            let dur = self.sim_now - epoch_start_sim;
            self.telemetry
                .span(SpanEvent::new("epoch", "epoch", track, epoch_start_sim, dur).at_epoch(t));
        }

        self.epoch += 1;
        let (traffic, _) = self.network.end_epoch();
        if self.telemetry.enabled(TelemetryLevel::Epoch) {
            self.record_epoch_metrics(t, &traffic, compute_s, comm_s, g_norm_sq);
        }
        EpochStats {
            epoch: t,
            loss: loss_sum,
            compute_s,
            comm_s,
            traffic,
            degraded: self.fp_degraded,
            degraded_drop: self.fp_degraded_drop,
            degraded_corrupt: self.fp_degraded_corrupt,
        }
    }

    /// Flushes the per-epoch metric rows into the sink (Epoch level and
    /// above); called once per completed epoch, after the traffic ledger
    /// for epoch `t` has been taken.
    fn record_epoch_metrics(
        &mut self,
        t: usize,
        traffic: &TrafficStats,
        compute_s: f64,
        comm_s: f64,
        g_norm_sq: f64,
    ) {
        let e = t as u32;
        for (&layer, counts) in &self.fp_selected {
            let lbl = labels(&[e, layer as u32]);
            self.telemetry.add(MetricId::SelectorCps, lbl, counts[fp::SELECT_CPS as usize]);
            self.telemetry.add(MetricId::SelectorPdt, lbl, counts[fp::SELECT_PDT as usize]);
            self.telemetry.add(MetricId::SelectorAvg, lbl, counts[fp::SELECT_AVG as usize]);
        }
        for (from, to, bytes) in traffic.links.iter_nonzero() {
            let lbl = labels(&[e, from as u32, to as u32]);
            self.telemetry.set(MetricId::LinkBytes, lbl, bytes as f64);
        }
        for (id, v) in [
            (MetricId::FaultDropped, traffic.dropped_msgs),
            (MetricId::FaultCorrupted, traffic.corrupted_msgs),
            (MetricId::FaultDuplicated, traffic.duplicated_msgs),
            (MetricId::FaultDegradedDrop, self.fp_degraded_drop),
            (MetricId::FaultDegradedCorrupt, self.fp_degraded_corrupt),
        ] {
            if v > 0 {
                self.telemetry.add(id, labels(&[e]), v);
            }
        }
        for w in 0..self.config.num_workers {
            let f = self.compute_factor(w);
            if f != 1.0 {
                self.telemetry.set(MetricId::FaultStragglerFactor, labels(&[e, w as u32]), f);
            }
        }
        self.telemetry.set(MetricId::PhaseComputeS, labels(&[e]), compute_s);
        self.telemetry.set(MetricId::PhaseCommS, labels(&[e]), comm_s);
        self.telemetry.set(MetricId::TimelineHeadroomS, labels(&[e]), self.epoch_idle_s);
        if self.telemetry.enabled(TelemetryLevel::Superstep) {
            self.telemetry.set(MetricId::PhasePackS, labels(&[e]), self.pack_s);
            self.telemetry.set(MetricId::PhaseUnpackS, labels(&[e]), self.unpack_s);
        }
        self.telemetry.set(MetricId::FpReconErrL1, labels(&[e]), self.fp_recon_err);

        if matches!(self.config.bp_mode, BpMode::ResEc { .. } | BpMode::TopkEc { .. }) {
            let mut by_layer: BTreeMap<usize, f64> = BTreeMap::new();
            for (&(_, layer, _), st) in &self.bp_residual {
                *by_layer.entry(layer).or_insert(0.0) += st.residual_norm_sq() as f64;
            }
            let num_layers = self.config.num_layers();
            // Theorem 1 bounds each layer's residual by a constant times
            // the true gradient magnitude; the probe α is empirical, so the
            // reference gets headroom over ‖G^L‖².
            let g_ref = 4.0 * g_norm_sq;
            for (layer, norm_sq) in by_layer {
                let lbl = labels(&[e, layer as u32]);
                self.telemetry.set(MetricId::ResecResidualSq, lbl, norm_sq);
                if let Some(alpha) = self.alpha_probe {
                    let bound = ec_compress::error::theorem1_bound(
                        alpha,
                        THEOREM1_RHO,
                        g_ref,
                        num_layers,
                        layer,
                    );
                    if let Some(bound) = bound {
                        self.telemetry.set(MetricId::ResecT1Bound, lbl, bound);
                    }
                }
            }
        }
    }

    /// Fetches the remote rows of `H^{l-1}` for requester `i` (exchange for
    /// computing layer `l ≥ 2`), applying the configured forward mode.
    fn exchange_fp(&mut self, i: usize, l: usize, t: usize) -> Matrix {
        let topo = Arc::clone(&self.contexts[i].layers[l - 1]);
        let cols = self.config.dims[l - 1];
        let measure = self.telemetry.enabled(TelemetryLevel::Superstep);
        let mut remote = Matrix::zeros(topo.remote_deps.len(), cols);
        for (j, deps) in topo.deps_by_owner.iter().enumerate() {
            if deps.is_empty() || j == i {
                continue;
            }
            // Responder j gathers the requested rows of its local H^{l-1}.
            let pack_timer = measure.then(HostTimer::start);
            let local_idx: Vec<usize> =
                deps.iter().map(|v| self.contexts[j].global_to_local[v]).collect();
            let h_rows = self.h_local[j][l - 1].gather_rows(&local_idx);

            let (reconstructed, wire, degrade_pdt) = match self.config.fp_mode {
                FpMode::Exact => {
                    let (m, w) = fp::respond_exact(&h_rows);
                    (m, w, None)
                }
                FpMode::Compressed { bits } => {
                    let (m, w) = fp::respond_compressed(&h_rows, bits);
                    (m, w, None)
                }
                FpMode::ReqEc { t_tr, .. } => {
                    let bits = self.fp_bits[i][j];
                    let granularity = self.config.reqec_granularity;
                    let ec_degrade = self.config.resilience.policy == ResiliencePolicy::EcDegrade
                        && self.network.faults().is_some();
                    let state = self.fp_trend.entry((i, l, j)).or_default();
                    let out = fp::reqec_step_with(state, &h_rows, bits, t_tr, t, granularity);
                    // Degrading is only safe for non-boundary messages:
                    // boundaries mutate the shared trend state, so losing
                    // one would desynchronize requester and responder.
                    let pdt = if ec_degrade && !out.exact_sent { state.predict(t) } else { None };
                    let sel = self.fp_selected.entry(l).or_default();
                    for (acc, &c) in sel.iter_mut().zip(out.selected.iter()) {
                        *acc += c as u64;
                    }
                    // Record the proportion for the Bit-Tuner when this is
                    // the last FP exchange (Alg. 3 line 13: l == L).
                    if l == self.config.num_layers() && !out.exact_sent {
                        self.fp_bits_feedback(i, j, out.proportion);
                    }
                    (out.reconstructed, out.wire, pdt)
                }
                FpMode::Delayed { r } => {
                    let cache = self.fp_cache.entry((i, l, j)).or_default();
                    let (m, w) = fp::delayed_step(cache, &h_rows, r, t);
                    (m, w, None)
                }
            };
            if let Some(tm) = &pack_timer {
                self.pack_s += tm.elapsed_s();
            }
            self.network.send(i, j, Channel::Control, REQUEST_BYTES);
            self.telemetry.observe(MetricId::FpWireBytes, labels(&[t as u32]), wire as f64);
            let reconstructed = match degrade_pdt {
                // EC-degrade: give the transfer a bounded number of
                // attempts, then fall back to the zero-payload prediction
                // `Ĥ_pdt = H_base + M_cr·k` instead of waiting further.
                Some(pdt) => {
                    let attempts = self.config.resilience.max_attempts;
                    let mut delivered = false;
                    let mut last_err = None;
                    for _ in 0..attempts {
                        match self.network.try_send(j, i, Channel::Forward, wire) {
                            Ok(()) => {
                                delivered = true;
                                break;
                            }
                            Err(err) => last_err = Some(err),
                        }
                    }
                    if delivered {
                        reconstructed
                    } else {
                        self.fp_degraded += 1;
                        match last_err {
                            Some(SendError::Corrupted) => self.fp_degraded_corrupt += 1,
                            _ => self.fp_degraded_drop += 1,
                        }
                        pdt
                    }
                }
                None => {
                    self.network.send(j, i, Channel::Forward, wire);
                    reconstructed
                }
            };
            self.fp_recon_err += ec_tensor::stats::rowwise_l1_distance(&reconstructed, &h_rows)
                .iter()
                .sum::<f32>() as f64;
            let unpack_timer = measure.then(HostTimer::start);
            for (row, v) in local_rows(&topo.remote_index, deps) {
                remote.set_row(row, reconstructed.row(v));
            }
            if let Some(tm) = &unpack_timer {
                self.unpack_s += tm.elapsed_s();
            }
        }
        remote
    }

    /// Total L1 reconstruction error of the forward messages in the most
    /// recent epoch.
    pub fn fp_reconstruction_error(&self) -> f64 {
        self.fp_recon_err
    }

    /// Fetches the remote rows of `G^l` for requester `i` (BP exchange for
    /// `l ≥ 2`), applying the configured backward mode.
    fn exchange_bp(&mut self, i: usize, l: usize, g_cur: &[Matrix]) -> Matrix {
        let topo = Arc::clone(&self.contexts[i].layers[l - 1]);
        let cols = self.config.dims[l];
        let measure = self.telemetry.enabled(TelemetryLevel::Superstep);
        let e = self.epoch as u32;
        let mut remote = Matrix::zeros(topo.remote_deps.len(), cols);
        for (j, deps) in topo.deps_by_owner.iter().enumerate() {
            if deps.is_empty() || j == i {
                continue;
            }
            let pack_timer = measure.then(HostTimer::start);
            let local_idx: Vec<usize> =
                deps.iter().map(|v| self.contexts[j].global_to_local[v]).collect();
            let g_rows = g_cur[j].gather_rows(&local_idx);
            let (reconstructed, wire) = match self.config.bp_mode {
                BpMode::Exact => bp::respond_exact(&g_rows),
                BpMode::Compressed { bits } => bp::respond_compressed(&g_rows, bits),
                BpMode::ResEc { bits } => {
                    let state = self.bp_residual.entry((i, l, j)).or_default();
                    bp::resec_step(state, &g_rows, bits)
                }
                BpMode::TopkEc { ratio } => {
                    let state = self.bp_residual.entry((i, l, j)).or_default();
                    bp::topk_ec_step(state, &g_rows, ratio)
                }
            };
            if let Some(tm) = &pack_timer {
                self.pack_s += tm.elapsed_s();
            }
            self.network.send(i, j, Channel::Control, REQUEST_BYTES);
            self.network.send(j, i, Channel::Backward, wire);
            self.telemetry.observe(MetricId::BpWireBytes, labels(&[e]), wire as f64);
            let unpack_timer = measure.then(HostTimer::start);
            for (row, v) in local_rows(&topo.remote_index, deps) {
                remote.set_row(row, reconstructed.row(v));
            }
            if let Some(tm) = &unpack_timer {
                self.unpack_s += tm.elapsed_s();
            }
        }
        remote
    }

    /// Records a proportion observation; the tuner consumes it at epoch end.
    fn fp_bits_feedback(&mut self, i: usize, j: usize, proportion: f32) {
        // Stash the proportion in the (i, j) slot using the epoch-end pass;
        // we store it via a dedicated map keyed the same way as fp_bits.
        self.fp_prop.insert((i, j), proportion);
    }

    fn apply_bit_tuner(&mut self, t: usize) {
        let updates = std::mem::take(&mut self.fp_prop);
        for ((i, j), p) in updates {
            let bits = fp::tune_bits(self.fp_bits[i][j], p);
            self.fp_bits[i][j] = bits;
            let lbl = labels(&[t as u32, i as u32, j as u32]);
            self.telemetry.set(MetricId::BitTunerBits, lbl, bits as f64);
        }
    }

    /// Evaluates the current model exactly over the full graph.
    pub fn evaluate(&self) -> Evaluation {
        let logits = self.forward_global();
        let d = &self.data;
        Evaluation {
            train: ec_nn::metrics::accuracy(&logits, &d.labels, &d.split.train),
            val: ec_nn::metrics::accuracy(&logits, &d.labels, &d.split.val),
            test: ec_nn::metrics::accuracy(&logits, &d.labels, &d.split.test),
        }
    }

    /// Full-graph forward pass with the current weights (exact, no
    /// compression — evaluation is out-of-band). Delegates to the shared
    /// read-only [`crate::infer::ModelWeights`] kernels, so this is
    /// bit-identical to what a serving process computes from a checkpoint
    /// of the same weights.
    pub fn forward_global(&self) -> Matrix {
        // Evaluation runs outside the worker fan-out, so the full machine
        // budget (kernel_threads = 0 → auto) is available to the kernels.
        let kt = self.config.compute.kernel_threads;
        self.inference_model().forward(&self.adjs, &self.data.features, kt)
    }
}

/// Computes each worker's loss contribution and `G^L` rows: softmax
/// cross-entropy over the local training vertices, scaled by the *global*
/// training-set size so that the summed worker gradients equal the global
/// mean-loss gradient.
fn local_loss_grad(
    logits: &Matrix,
    labels: &[u32],
    train_local: &[usize],
    total_train: usize,
) -> (f32, Matrix) {
    let probs = activations::softmax_rows(logits);
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let inv = 1.0 / total_train as f32;
    let mut loss = 0.0f32;
    for &v in train_local {
        let y = labels[v] as usize;
        loss -= probs.get(v, y).max(1e-12).ln();
        let row = grad.row_mut(v);
        for (c, g) in row.iter_mut().enumerate() {
            let indicator = if c == y { 1.0 } else { 0.0 };
            *g = (probs.get(v, c) - indicator) * inv;
        }
    }
    (loss * inv, grad)
}

/// Worst observed relative quantization error over a few synthetic
/// Gaussian matrices — the empirical stand-in for Theorem 1's `α`.
fn probe_alpha(bits: u8) -> f64 {
    let mut alpha = 0.0f32;
    for seed in 0..8u64 {
        let m = ec_tensor::init::normal(32, 16, 1.0, seed);
        let q = ec_compress::Quantized::compress(&m, bits);
        alpha = alpha.max(ec_compress::error::relative_error(&m, &q));
    }
    alpha as f64
}

/// Pairs each dep's position in the per-owner list with its row in the
/// requester's remote matrix.
fn local_rows<'a>(
    remote_index: &'a HashMap<usize, usize>,
    deps: &'a [usize],
) -> impl Iterator<Item = (usize, usize)> + 'a {
    deps.iter().enumerate().map(move |(k, v)| (remote_index[v], k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::{normalize, DatasetSpec};
    use ec_partition::hash::HashPartitioner;
    use ec_partition::Partitioner;

    fn engine_with(fp: FpMode, bp: BpMode, workers: usize) -> DistributedEngine {
        let data = Arc::new(DatasetSpec::cora().instantiate_with(150, 12, 5));
        let config = TrainingConfig {
            dims: vec![12, 8, data.num_classes],
            num_workers: workers,
            fp_mode: fp,
            bp_mode: bp,
            seed: 2,
            ..TrainingConfig::defaults(12, data.num_classes)
        };
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
        let partition = HashPartitioner::default().partition(&data.graph, workers);
        DistributedEngine::new(data, vec![adj; 2], partition, config)
    }

    #[test]
    fn preprocessing_charges_feature_cache() {
        let e = engine_with(FpMode::Exact, BpMode::Exact, 3);
        let pre = e.preprocessing();
        assert!(pre.feature_cache_bytes > 0, "remote features must be shipped once");
        assert!(pre.feature_cache_s > 0.0);
    }

    #[test]
    fn single_worker_has_no_vertex_traffic() {
        let mut e = engine_with(FpMode::Exact, BpMode::Exact, 1);
        let s = e.run_epoch();
        assert_eq!(s.traffic.fp_bytes, 0);
        assert_eq!(s.traffic.bp_bytes, 0);
        // Parameter traffic is also free: worker and server share node 0?
        // No — the server is a separate node, so param bytes remain.
        assert!(s.traffic.param_bytes > 0);
    }

    #[test]
    fn fp_traffic_scales_with_bits() {
        let mut e1 = engine_with(FpMode::Compressed { bits: 1 }, BpMode::Exact, 3);
        let mut e8 = engine_with(FpMode::Compressed { bits: 8 }, BpMode::Exact, 3);
        let s1 = e1.run_epoch();
        let s8 = e8.run_epoch();
        assert!(
            s8.traffic.fp_bytes > 4 * s1.traffic.fp_bytes,
            "8-bit {} not ≫ 1-bit {}",
            s8.traffic.fp_bytes,
            s1.traffic.fp_bytes
        );
    }

    #[test]
    fn bp_traffic_scales_with_bits() {
        let mut e1 = engine_with(FpMode::Exact, BpMode::Compressed { bits: 1 }, 3);
        let mut e8 = engine_with(FpMode::Exact, BpMode::Compressed { bits: 8 }, 3);
        let s1 = e1.run_epoch();
        let s8 = e8.run_epoch();
        assert!(s8.traffic.bp_bytes > 4 * s1.traffic.bp_bytes);
    }

    #[test]
    fn resec_populates_residual_state() {
        let mut e = engine_with(FpMode::Exact, BpMode::ResEc { bits: 2 }, 3);
        assert!(e.bp_residual_norms().is_empty());
        e.run_epoch();
        let norms = e.bp_residual_norms();
        assert!(!norms.is_empty());
        // Exchange layers for L=2 are exactly l=2.
        assert!(norms.iter().all(|&(l, _)| l == 2));
    }

    #[test]
    fn exact_mode_has_zero_reconstruction_error() {
        let mut e = engine_with(FpMode::Exact, BpMode::Exact, 3);
        e.run_epoch();
        assert_eq!(e.fp_reconstruction_error(), 0.0);
        let mut c = engine_with(FpMode::Compressed { bits: 1 }, BpMode::Exact, 3);
        c.run_epoch();
        assert!(c.fp_reconstruction_error() > 0.0);
    }

    #[test]
    fn evaluate_reports_probabilities_in_range() {
        let mut e = engine_with(FpMode::Exact, BpMode::Exact, 2);
        for _ in 0..3 {
            e.run_epoch();
        }
        let eval = e.evaluate();
        for acc in [eval.train, eval.val, eval.test] {
            assert!((0.0..=1.0).contains(&acc));
        }
        assert_eq!(e.epochs_run(), 3);
    }

    #[test]
    fn loss_decreases_under_compression_too() {
        let mut e = engine_with(
            FpMode::ReqEc { bits: 4, t_tr: 10, adaptive: false },
            BpMode::ResEc { bits: 4 },
            3,
        );
        let first = e.run_epoch().loss;
        let mut last = first;
        for _ in 0..30 {
            last = e.run_epoch().loss;
        }
        assert!(last < first, "loss {first} → {last}");
    }

    #[test]
    fn per_layer_sampled_adjacency_trains() {
        let data = Arc::new(DatasetSpec::products().instantiate_with(200, 12, 9));
        let (adjs, _) = crate::sampling::sample_layer_graphs(&data.graph, &[5, 3], 4);
        let config = TrainingConfig {
            dims: vec![12, 8, data.num_classes],
            num_workers: 3,
            seed: 2,
            ..TrainingConfig::defaults(12, data.num_classes)
        };
        let partition = HashPartitioner::default().partition(&data.graph, 3);
        let mut e = DistributedEngine::new(data, adjs, partition, config);
        let first = e.run_epoch().loss;
        for _ in 0..20 {
            e.run_epoch();
        }
        let last = e.run_epoch().loss;
        assert!(last < first, "sampled training loss {first} → {last}");
    }

    #[test]
    fn checkpoint_round_trips_through_the_engine() {
        let mut a = engine_with(FpMode::Exact, BpMode::Exact, 2);
        for _ in 0..2 {
            a.run_epoch();
        }
        let mut path = std::env::temp_dir();
        path.push(format!("ecgraph-engine-ckpt-{}.bin", std::process::id()));
        a.save_checkpoint(&path).unwrap();
        let mut b = engine_with(FpMode::Exact, BpMode::Exact, 2);
        b.load_checkpoint(&path).unwrap();
        let logits_a = a.forward_global();
        let logits_b = b.forward_global();
        assert!(logits_a.approx_eq(&logits_b, 1e-6));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn telemetry_captures_ec_internals() {
        let data = Arc::new(DatasetSpec::cora().instantiate_with(150, 12, 5));
        let config = TrainingConfig {
            dims: vec![12, 8, data.num_classes],
            num_workers: 3,
            fp_mode: FpMode::ReqEc { bits: 4, t_tr: 10, adaptive: true },
            bp_mode: BpMode::ResEc { bits: 4 },
            telemetry: ec_trace::TelemetryConfig::at(ec_trace::TelemetryLevel::Trace),
            seed: 2,
            ..TrainingConfig::defaults(12, data.num_classes)
        };
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
        let partition = HashPartitioner::default().partition(&data.graph, 3);
        let mut e = DistributedEngine::new(data, vec![adj; 2], partition, config);
        for _ in 0..3 {
            e.run_epoch();
        }
        let rep = e.take_telemetry().expect("trace level yields a report");
        // Epoch 0 ships trend boundaries; epoch 1 is the first epoch where
        // the Selector decides (exchange layer for L=2 is l=2).
        let decisions: u64 = ["selector.cps", "selector.pdt", "selector.avg"]
            .iter()
            .filter_map(|n| rep.counter(n, &[1, 2]))
            .sum();
        assert!(decisions > 0, "selector decisions must be recorded");
        assert!(rep.gauge("resec.residual_l2sq", &[1, 2]).is_some());
        assert!(rep.gauge("resec.theorem1_bound", &[1, 2]).is_some());
        assert!(rep.rows_named("bittuner.bits").next().is_some());
        assert!(rep.rows_named("traffic.link_bytes").next().is_some());
        assert!(rep.gauge("phase.compute", &[0]).is_some());
        assert!(rep.rows_named("fp.wire_bytes").next().is_some());
        assert!(rep.spans.iter().any(|s| s.name == "fp:exchange"));
        assert!(rep.spans.iter().any(|s| s.name == "epoch"));
        // Timeline attribution: the headroom gauge is always flushed, and
        // under real host timing three workers cannot finish every
        // superstep in lock-step, so barrier idle shows up as spans and
        // the codec work as `comm:pack` spans on the network track.
        assert!(rep.gauge("timeline.overlap_headroom_s", &[0]).is_some());
        assert!(rep.spans.iter().any(|s| s.name == "idle:wait" && s.cat == "idle"));
        assert!(rep.spans.iter().any(|s| s.name == "comm:pack" && s.cat == "pack"));
        assert!(rep.rows_named("timeline.idle_s").next().is_some());

        let off = engine_with(FpMode::Exact, BpMode::Exact, 2);
        assert!(off.take_telemetry().is_none(), "Off yields no report");
    }

    #[test]
    #[should_panic(expected = "one adjacency per layer")]
    fn rejects_wrong_adjacency_count() {
        let data = Arc::new(DatasetSpec::cora().instantiate_with(50, 8, 1));
        let config = TrainingConfig {
            dims: vec![8, 8, data.num_classes],
            num_workers: 2,
            ..TrainingConfig::defaults(8, data.num_classes)
        };
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
        let partition = HashPartitioner::default().partition(&data.graph, 2);
        let _ = DistributedEngine::new(data, vec![adj], partition, config);
    }

    #[test]
    #[should_panic(expected = "feature dim")]
    fn rejects_dim_mismatch() {
        let data = Arc::new(DatasetSpec::cora().instantiate_with(50, 8, 1));
        let config = TrainingConfig {
            dims: vec![9, 8, data.num_classes],
            num_workers: 2,
            ..TrainingConfig::defaults(9, data.num_classes)
        };
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
        let partition = HashPartitioner::default().partition(&data.graph, 2);
        let _ = DistributedEngine::new(data, vec![adj; 2], partition, config);
    }
}
