//! Intra-superstep worker fan-out.
//!
//! Between two superstep barriers the simulated workers are independent by
//! construction: each compute block reads only its own partition's state
//! (plus shared read-only weights) and writes only its own slots. This
//! module runs those blocks on scoped threads and hands the results back
//! **in ascending worker order**, so the caller can replay every
//! order-sensitive effect — message emission, gradient accumulation,
//! `max`-compute reduction — exactly as the sequential engine did. Each
//! closure times itself with [`ec_comm::HostTimer`]; the caller applies
//! straggler factors and the per-superstep `max` on the replay pass.

/// Runs `f(0), …, f(n - 1)` across at most `threads` scoped threads and
/// returns the results indexed by worker.
///
/// With `threads <= 1` this is a plain sequential loop (the historical
/// engine behavior). Otherwise workers are split into contiguous bands,
/// one scoped thread per band, each filling the disjoint slice of the
/// result vector that belongs to its workers — no locks, no reordering. A
/// panicking closure propagates at the scope join, like the sequential
/// loop would.
pub fn run_workers<R: Send>(threads: usize, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = slots.as_mut_slice();
        let mut w0 = 0usize;
        while w0 < n {
            let here = chunk.min(n - w0);
            let (band, tail) = rest.split_at_mut(here);
            rest = tail;
            let start = w0;
            scope.spawn(move || {
                for (i, slot) in band.iter_mut().enumerate() {
                    *slot = Some(f(start + i));
                }
            });
            w0 += here;
        }
    });
    // Every slot was filled by exactly one band; `flatten` cannot drop
    // anything (and `debug_assert` guards the invariant in tests).
    debug_assert!(slots.iter().all(Option::is_some));
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_worker_order() {
        for threads in [0usize, 1, 2, 3, 7, 16] {
            let out = run_workers(threads, 9, |w| w * w);
            assert_eq!(out, (0..9).map(|w| w * w).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_worker_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_workers(4, 11, |w| {
            counter.fetch_add(1, Ordering::SeqCst);
            w
        });
        assert_eq!(counter.load(Ordering::SeqCst), 11);
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(run_workers(4, 0, |w| w).is_empty());
        assert_eq!(run_workers(8, 1, |w| w + 1), vec![1]);
    }
}
