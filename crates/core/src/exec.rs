//! Intra-superstep worker fan-out.
//!
//! Between two superstep barriers the simulated workers are independent by
//! construction: each compute block reads only its own partition's state
//! (plus shared read-only weights) and writes only its own slots. This
//! module runs those blocks on a persistent [`WorkerPool`] (owned by the
//! engine, built once per `ComputeConfig` — not spawned per superstep like
//! the old scoped threads) and hands the results back **in ascending
//! worker order**, so the caller can replay every order-sensitive effect —
//! message emission, gradient accumulation, `max`-compute reduction —
//! exactly as the sequential engine did. Each closure times itself with
//! [`ec_comm::HostTimer`]; the caller applies straggler factors and the
//! per-superstep `max` on the replay pass.

use ec_comm::HostTimer;
use ec_tensor::pool::Task;
pub use ec_tensor::pool::WorkerPool;

/// Runs `f(0), …, f(n - 1)` across the pool's lanes and returns the
/// results indexed by worker.
///
/// With a 1-thread pool (or `n <= 1`) this is a plain sequential loop (the
/// historical engine behavior). Otherwise workers are split into
/// contiguous bands, one pool task per band (band `i` on lane
/// `i % threads`, deterministically), each filling the disjoint slice of
/// the result vector that belongs to its workers — no locks, no
/// reordering. A panicking closure propagates after the whole batch
/// completes, and the pool survives it.
pub fn run_workers<R: Send>(pool: &WorkerPool, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = pool.threads().clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    {
        let f = &f;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(threads);
        let mut rest = slots.as_mut_slice();
        let mut w0 = 0usize;
        while w0 < n {
            let here = chunk.min(n - w0);
            let (band, tail) = rest.split_at_mut(here);
            rest = tail;
            let start = w0;
            tasks.push(Box::new(move || {
                for (i, slot) in band.iter_mut().enumerate() {
                    *slot = Some(f(start + i));
                }
            }));
            w0 += here;
        }
        pool.run(tasks);
    }
    // Every slot was filled by exactly one band; `flatten` cannot drop
    // anything (and `debug_assert` guards the invariant in tests).
    debug_assert!(slots.iter().all(Option::is_some));
    slots.into_iter().flatten().collect()
}

/// [`run_workers`] plus the host-measured wall time of the whole fan-out
/// (dispatch → barrier), via the sanctioned [`HostTimer`]. The engine
/// emits this as an `exec:fanout` span so the timeline attribution can
/// compare barrier wall time against the per-worker compute sum — the
/// gap is pool overhead plus the serialization the replay pass pays.
/// Zero under deterministic timing, like every host measurement.
pub fn run_workers_timed<R: Send>(
    pool: &WorkerPool,
    n: usize,
    f: impl Fn(usize) -> R + Sync,
) -> (Vec<R>, f64) {
    let timer = HostTimer::start();
    let out = run_workers(pool, n, f);
    (out, timer.elapsed_s())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_worker_order() {
        for threads in [0usize, 1, 2, 3, 7, 16] {
            let pool = WorkerPool::new(threads);
            let out = run_workers(&pool, 9, |w| w * w);
            assert_eq!(out, (0..9).map(|w| w * w).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_worker_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let out = run_workers(&pool, 11, |w| {
            counter.fetch_add(1, Ordering::SeqCst);
            w
        });
        assert_eq!(counter.load(Ordering::SeqCst), 11);
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        // The whole point of the persistent pool: many fan-outs, one set
        // of lanes. Results must stay ordered on every reuse.
        let pool = WorkerPool::new(4);
        for round in 0..50usize {
            let out = run_workers(&pool, 7, |w| w + round);
            assert_eq!(out, (0..7).map(|w| w + round).collect::<Vec<_>>(), "round={round}");
        }
    }

    #[test]
    fn timed_variant_returns_same_results_and_a_finite_time() {
        let pool = WorkerPool::new(2);
        let (out, secs) = run_workers_timed(&pool, 5, |w| w * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        assert!(secs.is_finite() && secs >= 0.0);
    }

    #[test]
    fn degenerate_sizes() {
        let pool = WorkerPool::new(4);
        assert!(run_workers(&pool, 0, |w| w).is_empty());
        assert_eq!(run_workers(&WorkerPool::new(8), 1, |w| w + 1), vec![1]);
    }
}
