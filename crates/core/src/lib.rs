//! # `ec-graph` — the EC-Graph distributed GNN system
//!
//! This crate is the reproduction's centerpiece: the distributed,
//! graph-centered full-batch GNN training system of *"EC-Graph: A
//! Distributed Graph Neural Network System with Error-Compensated
//! Compression"* (ICDE 2022), together with every baseline system its
//! evaluation compares against.
//!
//! ## The system
//!
//! * [`config`] — training configuration: forward/backward compression
//!   modes ([`config::FpMode`], [`config::BpMode`]) cover the paper's
//!   Non-cp / Cp-fp / Cp-bp / ReqEC-FP / ResEC-BP / Bit-Tuner grid and the
//!   DistGNN-style delayed aggregation;
//! * [`context`] — the Graph Engine: per-worker subgraph slices, remote
//!   1-hop dependency sets (the NAC's view), local vertex renumbering;
//! * [`fp`] — forward-pass message preparation: plain quantization and
//!   **ReqEC-FP** (trend groups, three candidate approximations, the
//!   Selector of Eq. 10, and the adaptive Bit-Tuner);
//! * [`bp`] — backward-pass message preparation: plain quantization and
//!   **ResEC-BP** (error-feedback residual, Eqs. 11–12);
//! * [`engine`] — the superstep engine: Algorithms 1–6 over the simulated
//!   cluster, parameter-server pulls/pushes, byte-accurate traffic and
//!   simulated epoch times;
//! * [`trainer`] — the epoch loop: convergence tracking, evaluation,
//!   [`report::RunResult`] emission;
//! * [`sampling`] — offline per-layer fan-out sampling (EC-Graph-S) and
//!   mini-batch block sampling (DistDGL-style);
//! * [`baselines`] — DGL/PyG-like single-machine trainers, the
//!   ML-centered (AliGraph-FG / AGL) systems, and the DistDGL-like
//!   online-sampling trainer;
//! * [`cost_model`] — the analytic Table II cost comparison;
//! * [`infer`] — read-only inference: [`infer::ModelWeights`] detaches
//!   trained weights from the engine (or loads them straight from a
//!   checkpoint) and owns the forward kernels that `evaluate()` and the
//!   `ec-serve` serving layer share;
//! * [`report`] — experiment result records shared by the bench harness;
//! * [`wire`] — concrete serialization for every vertex message (the
//!   gRPC/protobuf stand-in), with tests proving the engine's analytic
//!   byte charges equal real serialized sizes.

pub mod baselines;
pub mod bp;
pub mod config;
pub mod context;
pub mod cost_model;
pub mod engine;
pub mod exec;
pub mod fp;
pub mod infer;
pub mod report;
pub mod sampling;
pub mod trainer;
pub mod wire;

pub use config::{BpMode, FpMode, ResilienceConfig, ResiliencePolicy, TrainingConfig};
pub use engine::{DistributedEngine, EngineSnapshot};
pub use report::{EpochRecord, RunResult};
pub use trainer::train;
