//! Golden-file tests: the fixture tree under `tests/fixtures/` seeds one or
//! more violations per rule, and `expected.txt` is the snapshot of the
//! CLI's human-readable output over it. Regenerate after an intentional
//! rule change with:
//!
//! ```sh
//! cargo run -q -p ec-lint -- --check --root crates/lint/tests/fixtures \
//!     > crates/lint/tests/fixtures/expected.txt
//! ```

use ec_lint::config::LintConfig;
use ec_lint::diag::Severity;
use std::path::Path;
use std::process::Command;

fn fixtures_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_diags() -> Vec<ec_lint::diag::Diagnostic> {
    let root = fixtures_root();
    let toml = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let config = LintConfig::parse(&toml).unwrap();
    ec_lint::run(&root, &config).unwrap()
}

#[test]
fn fixture_diagnostics_match_the_snapshot() {
    let diags = fixture_diags();
    let expected = std::fs::read_to_string(fixtures_root().join("expected.txt")).unwrap();
    // The snapshot is the CLI output: diagnostics plus a trailing summary.
    let expected_diags: Vec<&str> =
        expected.lines().filter(|l| !l.starts_with("ec-lint:")).collect();
    // Multiline messages (wire-schema-lock drift) render as several
    // output lines; flatten the same way the CLI prints them.
    let got: Vec<String> = diags
        .iter()
        .flat_map(|d| d.to_string().lines().map(str::to_owned).collect::<Vec<_>>())
        .collect();
    assert_eq!(
        got, expected_diags,
        "fixture diagnostics drifted from tests/fixtures/expected.txt; \
         regenerate it if the change is intentional"
    );
}

#[test]
fn every_rule_fires_on_the_fixtures() {
    let diags = fixture_diags();
    for rule in [
        "no-unordered-iteration",
        "no-wall-clock",
        "no-unseeded-rng",
        "no-panic-hot-path",
        "wire-hygiene",
        "thread-scope-hygiene",
        "no-float-unordered-reduce",
        "metric-catalog-sync",
        "wire-schema-lock",
        "determinism-taint",
        "unused-suppression",
        "disjoint-band-writes",
        "atomics-ordering-audit",
        "lock-then-wait-hygiene",
    ] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "rule {rule} produced no fixture findings — is it still wired up?"
        );
    }
    // rng is configured warn-severity in the fixture config; the rest error.
    assert!(diags.iter().any(|d| d.severity == Severity::Warn));
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn exempt_fixture_lines_stay_clean() {
    let diags = fixture_diags();
    // unordered.rs: the suppressed `sorted_keys` read (line 38), the
    // lookup, and the `#[cfg(test)]` module must not appear.
    assert!(!diags.iter().any(|d| d.path == "src/unordered.rs" && d.line > 30), "{diags:?}");
    // hot_path.rs: `assert!` and the test module are allowed.
    assert!(!diags.iter().any(|d| d.path == "src/hot_path.rs" && d.line > 17), "{diags:?}");
    // wire_bad.rs: `CoveredPayload` derives both directions and round-trips.
    assert!(!diags.iter().any(|d| d.message.contains("CoveredPayload")), "{diags:?}");
    // scope_ok.rs: `run_workers` resolves to a non-exec module, so the
    // closure is never scanned.
    assert!(!diags.iter().any(|d| d.path == "src/scope_ok.rs"), "{diags:?}");
    // float_reduce.rs: integer turbofish sums and ordered Vec sums pass.
    assert!(!diags.iter().any(|d| d.path == "src/float_reduce.rs" && d.line > 22), "{diags:?}");
    // metrics.rs: `Tolerated` is suppressed, `Alive` is recorded.
    assert!(!diags.iter().any(|d| d.message.contains("Tolerated")), "{diags:?}");
    assert!(!diags.iter().any(|d| d.message.contains("`Alive`")), "{diags:?}");
    // wire_types.rs: StableHeader matches its entry; ScratchState is not
    // a wire type at all.
    assert!(!diags.iter().any(|d| d.message.contains("StableHeader")), "{diags:?}");
    assert!(!diags.iter().any(|d| d.message.contains("ScratchState")), "{diags:?}");
    // stale_allow.rs: the suppression that covers a real Instant is used.
    assert!(!diags.iter().any(|d| d.path == "src/stale_allow.rs" && d.line < 10), "{diags:?}");
    // pool_clean.rs: band-disciplined closures write only through their
    // split_at_mut bands, parameters, and locals.
    assert!(!diags.iter().any(|d| d.path == "src/pool_clean.rs"), "{diags:?}");
    // atomics_ok.rs: both justified sites pass the marker check; the only
    // findings there come from the deliberately drifted lock fingerprint.
    assert!(
        !diags.iter().any(|d| d.path == "src/atomics_ok.rs" && !d.message.contains("drifted")),
        "{diags:?}"
    );
    // condvar_ok.rs: the looped wait and drop-then-lock sequence are clean.
    assert!(!diags.iter().any(|d| d.path == "src/condvar_ok.rs"), "{diags:?}");
}

#[test]
fn cli_exits_nonzero_on_fixtures_and_zero_on_the_workspace() {
    let bin = env!("CARGO_BIN_EXE_ec-lint");
    let fixtures =
        Command::new(bin).args(["--check", "--root"]).arg(fixtures_root()).output().unwrap();
    assert_eq!(fixtures.status.code(), Some(1), "fixtures must fail the check");

    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let workspace =
        Command::new(bin).args(["--check", "--root"]).arg(&workspace_root).output().unwrap();
    assert!(
        workspace.status.success(),
        "workspace must be lint-clean:\n{}",
        String::from_utf8_lossy(&workspace.stdout)
    );
}

#[test]
fn json_output_lists_every_diagnostic() {
    let bin = env!("CARGO_BIN_EXE_ec-lint");
    let out = Command::new(bin)
        .args(["--check", "--json", "--root"])
        .arg(fixtures_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    let diags = fixture_diags();
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    assert_eq!(text.matches("\"rule\"").count(), diags.len());
    assert!(
        text.contains(&format!("\"errors\":{errors}"))
            || text.contains(&format!("\"errors\": {errors}")),
        "{text}"
    );
}

/// Builds the interprocedural analysis over a workspace root the same way
/// `run_with` does, so tests can inspect the graph directly.
fn analysis_over(root: &Path) -> (Vec<String>, ec_lint::callgraph::Analysis) {
    let files = ec_lint::collect_rust_files(root).unwrap();
    let mut lexed = std::collections::BTreeMap::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        lexed.insert(rel.clone(), ec_lint::lexer::lex(&src));
    }
    let ws = ec_lint::symbols::Workspace::build(root, &lexed).unwrap();
    let mut summaries = Vec::new();
    for rel in &files {
        if rel.starts_with("tests/fixtures/") || rel.contains("/tests/fixtures/") {
            continue;
        }
        let module = ws.module_of(rel).unwrap_or("").to_string();
        summaries.push(ec_lint::callgraph::summarize_file(
            rel,
            &module,
            &lexed[rel],
            &ws.parsed[rel],
        ));
    }
    (files, ec_lint::callgraph::Analysis::build(&ws, &summaries))
}

#[test]
fn fixture_call_graph_matches_the_snapshot() {
    let (_, analysis) = analysis_over(&fixtures_root());
    let mut dump = String::new();
    for (fq, node) in &analysis.nodes {
        let all = analysis.effects_of(fq);
        dump.push_str(&format!("fn {fq} direct={} all={}\n", node.direct, all));
        if let Some(sites) = analysis.edges.get(fq) {
            let mut callees: Vec<&str> = sites.iter().map(|s| s.callee.as_str()).collect();
            callees.sort_unstable();
            callees.dedup();
            for c in callees {
                dump.push_str(&format!("  -> {c}\n"));
            }
        }
    }
    let snapshot = fixtures_root().join("callgraph.txt");
    if std::env::var("UPDATE_CALLGRAPH_SNAPSHOT").is_ok() {
        std::fs::write(&snapshot, &dump).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&snapshot).expect(
        "tests/fixtures/callgraph.txt missing; regenerate with \
         UPDATE_CALLGRAPH_SNAPSHOT=1 cargo test -p ec-lint --test golden",
    );
    assert_eq!(
        dump, expected,
        "fixture call graph drifted from tests/fixtures/callgraph.txt; \
         regenerate it if the change is intentional"
    );
}

/// Acceptance: the call graph is total over the real workspace — every
/// non-fixture `.rs` file parses into the symbol table and yields a
/// summary, and every summarized function landed in the graph.
#[test]
fn call_graph_covers_every_workspace_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (files, analysis) = analysis_over(&root);
    let covered: std::collections::BTreeSet<&str> =
        analysis.nodes.values().map(|n| n.path.as_str()).collect();
    for rel in &files {
        if rel.starts_with("tests/fixtures/") || rel.contains("/tests/fixtures/") {
            continue;
        }
        // A file whose parse yields no `fn` items contributes no nodes —
        // e.g. one whose functions all live inside macro invocations,
        // which the tolerant parser deliberately treats as opaque. Every
        // file with at least one parsed `fn` must appear in the graph.
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lexed = ec_lint::lexer::lex(&src);
        let parsed = ec_lint::parser::parse(&lexed).unwrap();
        let has_fns = parsed.all_items().iter().any(|i| i.kind == ec_lint::parser::ItemKind::Fn);
        if has_fns {
            assert!(covered.contains(rel.as_str()), "no call-graph nodes from {rel}");
        }
    }
    assert!(analysis.nodes.len() > 1000, "workspace graph suspiciously small");
}

/// Acceptance: a cold run and a warm (fully cached) run over the fixture
/// corpus produce byte-identical JSON and SARIF.
#[test]
fn cold_and_warm_cache_runs_are_byte_identical() {
    let bin = env!("CARGO_BIN_EXE_ec-lint");
    let scratch = std::env::temp_dir().join(format!("ec-lint-coldwarm-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let cache = scratch.join("cache");
    let run = |sarif: &Path| {
        let out = Command::new(bin)
            .args(["--check", "--json", "--root"])
            .arg(fixtures_root())
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--sarif")
            .arg(sarif)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "fixtures fail the check either way");
        out.stdout
    };
    let cold_sarif = scratch.join("cold.sarif");
    let warm_sarif = scratch.join("warm.sarif");
    let cold_json = run(&cold_sarif);
    assert!(cache.read_dir().unwrap().next().is_some(), "cold run populated the cache");
    let warm_json = run(&warm_sarif);
    assert_eq!(cold_json, warm_json, "warm cache changed the JSON bytes");
    assert_eq!(
        std::fs::read(&cold_sarif).unwrap(),
        std::fs::read(&warm_sarif).unwrap(),
        "warm cache changed the SARIF bytes"
    );
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn sarif_export_covers_every_fixture_diagnostic() {
    let diags = fixture_diags();
    let log = ec_lint::sarif::to_sarif(&diags);
    let results = log["runs"][0]["results"].as_array().expect("results").len();
    assert_eq!(results, diags.len());
}
