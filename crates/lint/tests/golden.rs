//! Golden-file tests: the fixture tree under `tests/fixtures/` seeds one or
//! more violations per rule, and `expected.txt` is the snapshot of the
//! CLI's human-readable output over it. Regenerate after an intentional
//! rule change with:
//!
//! ```sh
//! cargo run -q -p ec-lint -- --check --root crates/lint/tests/fixtures \
//!     > crates/lint/tests/fixtures/expected.txt
//! ```

use ec_lint::config::LintConfig;
use ec_lint::diag::Severity;
use std::path::Path;
use std::process::Command;

fn fixtures_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_diags() -> Vec<ec_lint::diag::Diagnostic> {
    let root = fixtures_root();
    let toml = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let config = LintConfig::parse(&toml).unwrap();
    ec_lint::run(&root, &config).unwrap()
}

#[test]
fn fixture_diagnostics_match_the_snapshot() {
    let diags = fixture_diags();
    let expected = std::fs::read_to_string(fixtures_root().join("expected.txt")).unwrap();
    // The snapshot is the CLI output: diagnostics plus a trailing summary.
    let expected_diags: Vec<&str> =
        expected.lines().filter(|l| !l.starts_with("ec-lint:")).collect();
    // Multiline messages (wire-schema-lock drift) render as several
    // output lines; flatten the same way the CLI prints them.
    let got: Vec<String> = diags
        .iter()
        .flat_map(|d| d.to_string().lines().map(str::to_owned).collect::<Vec<_>>())
        .collect();
    assert_eq!(
        got, expected_diags,
        "fixture diagnostics drifted from tests/fixtures/expected.txt; \
         regenerate it if the change is intentional"
    );
}

#[test]
fn every_rule_fires_on_the_fixtures() {
    let diags = fixture_diags();
    for rule in [
        "no-unordered-iteration",
        "no-wall-clock",
        "no-unseeded-rng",
        "no-panic-hot-path",
        "wire-hygiene",
        "thread-scope-hygiene",
        "no-float-unordered-reduce",
        "metric-catalog-sync",
        "wire-schema-lock",
        "unused-suppression",
    ] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "rule {rule} produced no fixture findings — is it still wired up?"
        );
    }
    // rng is configured warn-severity in the fixture config; the rest error.
    assert!(diags.iter().any(|d| d.severity == Severity::Warn));
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn exempt_fixture_lines_stay_clean() {
    let diags = fixture_diags();
    // unordered.rs: the suppressed `sorted_keys` read (line 38), the
    // lookup, and the `#[cfg(test)]` module must not appear.
    assert!(!diags.iter().any(|d| d.path == "src/unordered.rs" && d.line > 30), "{diags:?}");
    // hot_path.rs: `assert!` and the test module are allowed.
    assert!(!diags.iter().any(|d| d.path == "src/hot_path.rs" && d.line > 17), "{diags:?}");
    // wire_bad.rs: `CoveredPayload` derives both directions and round-trips.
    assert!(!diags.iter().any(|d| d.message.contains("CoveredPayload")), "{diags:?}");
    // scope_ok.rs: `run_workers` resolves to a non-exec module, so the
    // closure is never scanned.
    assert!(!diags.iter().any(|d| d.path == "src/scope_ok.rs"), "{diags:?}");
    // float_reduce.rs: integer turbofish sums and ordered Vec sums pass.
    assert!(!diags.iter().any(|d| d.path == "src/float_reduce.rs" && d.line > 22), "{diags:?}");
    // metrics.rs: `Tolerated` is suppressed, `Alive` is recorded.
    assert!(!diags.iter().any(|d| d.message.contains("Tolerated")), "{diags:?}");
    assert!(!diags.iter().any(|d| d.message.contains("`Alive`")), "{diags:?}");
    // wire_types.rs: StableHeader matches its entry; ScratchState is not
    // a wire type at all.
    assert!(!diags.iter().any(|d| d.message.contains("StableHeader")), "{diags:?}");
    assert!(!diags.iter().any(|d| d.message.contains("ScratchState")), "{diags:?}");
    // stale_allow.rs: the suppression that covers a real Instant is used.
    assert!(!diags.iter().any(|d| d.path == "src/stale_allow.rs" && d.line < 10), "{diags:?}");
}

#[test]
fn cli_exits_nonzero_on_fixtures_and_zero_on_the_workspace() {
    let bin = env!("CARGO_BIN_EXE_ec-lint");
    let fixtures =
        Command::new(bin).args(["--check", "--root"]).arg(fixtures_root()).output().unwrap();
    assert_eq!(fixtures.status.code(), Some(1), "fixtures must fail the check");

    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let workspace =
        Command::new(bin).args(["--check", "--root"]).arg(&workspace_root).output().unwrap();
    assert!(
        workspace.status.success(),
        "workspace must be lint-clean:\n{}",
        String::from_utf8_lossy(&workspace.stdout)
    );
}

#[test]
fn json_output_lists_every_diagnostic() {
    let bin = env!("CARGO_BIN_EXE_ec-lint");
    let out = Command::new(bin)
        .args(["--check", "--json", "--root"])
        .arg(fixtures_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    let diags = fixture_diags();
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    assert_eq!(text.matches("\"rule\"").count(), diags.len());
    assert!(
        text.contains(&format!("\"errors\":{errors}"))
            || text.contains(&format!("\"errors\": {errors}")),
        "{text}"
    );
}
