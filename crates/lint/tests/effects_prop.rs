//! Property tests for the effect-inference fixpoint: on arbitrary (cyclic)
//! call graphs it must terminate, agree with a brute-force reachability
//! closure, and be invariant under node relabeling — i.e. the answer
//! depends on the graph, never on the `BTreeMap` iteration order the
//! fixpoint happens to sweep in.

use ec_lint::effects::{infer, EffectSet};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Ground truth by definition: a function's effect set is the union of the
/// direct sets of every node reachable from it (including itself).
fn reachability_closure(
    edges: &BTreeMap<String, Vec<String>>,
    direct: &BTreeMap<String, EffectSet>,
) -> BTreeMap<String, EffectSet> {
    let mut names: BTreeSet<String> = direct.keys().cloned().collect();
    for (caller, callees) in edges {
        names.insert(caller.clone());
        names.extend(callees.iter().cloned());
    }
    let mut out = BTreeMap::new();
    for name in &names {
        let mut seen = BTreeSet::new();
        let mut queue = vec![name.clone()];
        let mut set = EffectSet::EMPTY;
        while let Some(cur) = queue.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(d) = direct.get(&cur) {
                set.join(*d);
            }
            if let Some(callees) = edges.get(&cur) {
                queue.extend(callees.iter().cloned());
            }
        }
        out.insert(name.clone(), set);
    }
    out
}

/// Builds a graph over `n` nodes from raw pick lists (indices taken mod
/// `n`, effect bits masked to the 6 real effects). Self-loops and
/// duplicate edges are kept — the fixpoint must tolerate both.
fn build_graph(
    n: usize,
    edge_picks: &[(usize, usize)],
    effect_picks: &[(usize, u8)],
    label: impl Fn(usize) -> String,
) -> (BTreeMap<String, Vec<String>>, BTreeMap<String, EffectSet>) {
    let mut edges: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for &(a, b) in edge_picks {
        edges.entry(label(a % n)).or_default().push(label(b % n));
    }
    let mut direct: BTreeMap<String, EffectSet> = BTreeMap::new();
    for i in 0..n {
        direct.insert(label(i), EffectSet::EMPTY);
    }
    for &(i, bits) in effect_picks {
        direct.entry(label(i % n)).or_insert(EffectSet::EMPTY).join(EffectSet(bits & 0x3f));
    }
    (edges, direct)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fixpoint terminates on arbitrary cyclic graphs and computes
    /// exactly the reachability closure of the direct sets.
    #[test]
    fn fixpoint_matches_reachability_closure(
        n in 1usize..24,
        edge_picks in proptest::collection::vec((0usize..24, 0usize..24), 0..96),
        effect_picks in proptest::collection::vec((0usize..24, 0u8..64), 0..32),
    ) {
        let (edges, direct) = build_graph(n, &edge_picks, &effect_picks, |i| format!("n{i:02}"));
        let inferred = infer(&edges, &direct);
        let truth = reachability_closure(&edges, &direct);
        prop_assert_eq!(inferred, truth);
    }

    /// Relabeling the nodes (which permutes the BTreeMap sweep order)
    /// commutes with inference: rename → infer equals infer → rename.
    #[test]
    fn fixpoint_is_independent_of_node_order(
        n in 1usize..24,
        edge_picks in proptest::collection::vec((0usize..24, 0usize..24), 0..96),
        effect_picks in proptest::collection::vec((0usize..24, 0u8..64), 0..32),
        salt in proptest::collection::vec(0u64..u64::MAX, 24..25),
    ) {
        // A permutation of 0..n: sort indices by their random salt.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (salt[i], i));
        let perm = move |i: usize| order[i];

        let fwd = |i: usize| format!("n{i:02}");
        let renamed = |i: usize| format!("m{:02}", perm(i));

        let (edges_a, direct_a) = build_graph(n, &edge_picks, &effect_picks, fwd);
        let (edges_b, direct_b) = build_graph(n, &edge_picks, &effect_picks, renamed);

        let inferred_a = infer(&edges_a, &direct_a);
        let inferred_b = infer(&edges_b, &direct_b);

        // Map A's answer through the relabeling and compare.
        let mapped: BTreeMap<String, EffectSet> = inferred_a
            .into_iter()
            .map(|(name, set)| {
                let i: usize = name[1..].parse().expect("n-prefixed label");
                (format!("m{:02}", perm(i)), set)
            })
            .collect();
        prop_assert_eq!(mapped, inferred_b);
    }
}
