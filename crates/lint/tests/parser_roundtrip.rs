//! Parser totality tests: the item parser must accept every `.rs` file in
//! the workspace (the semantic rules refuse to run on a parse error, so a
//! file the parser chokes on is a blind spot), and its top-level item
//! spans must tile the token stream exactly — no token unaccounted for,
//! no token claimed twice.

use ec_lint::lexer::lex;
use ec_lint::parser::{parse, ParsedFile};
use proptest::prelude::*;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Asserts the top-level spans of `parsed` tile `[0, n_tokens)` with no
/// gaps or overlaps. This is the invariant the suppression scope checks
/// and the semantic rules both lean on.
fn assert_tiles(parsed: &ParsedFile, n_tokens: usize, what: &str) {
    let mut cursor = 0usize;
    for item in &parsed.items {
        assert_eq!(
            item.span.0, cursor,
            "{what}: gap or overlap before {:?} `{:?}` at line {}",
            item.kind, item.name, item.line
        );
        assert!(item.span.1 >= item.span.0, "{what}: negative span on `{:?}`", item.name);
        cursor = item.span.1;
    }
    assert_eq!(cursor, n_tokens, "{what}: trailing tokens not covered by any item");
}

/// Every `.rs` file in the workspace — crates, shims, integration tests,
/// fixtures — must parse. The fixture sources are lint bait, not valid
/// programs, which makes them exactly the kind of input a tolerant
/// parser must still get through.
#[test]
fn every_workspace_file_parses_and_tiles() {
    let root = workspace_root();
    let files = ec_lint::collect_rust_files(&root).unwrap();
    assert!(files.len() > 50, "workspace walk looks broken: only {} files", files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lexed = lex(&src);
        let parsed = parse(&lexed).unwrap_or_else(|e| panic!("{rel} failed to parse: {e}"));
        assert_tiles(&parsed, lexed.tokens.len(), rel);
    }
}

/// Fragments the soup generator stitches together. Deliberately heavy on
/// the constructs that have bitten hand-rolled parsers: unbalanced-looking
/// generics, lifetimes, nested closures, macro invocations with every
/// delimiter, attributes, and raw trailing punctuation.
const FRAGMENTS: &[&str] = &[
    "fn f() { }",
    "pub fn g<T: Clone>(x: &mut T) -> Vec<u8> { x.clone(); vec![] }",
    "struct S { a: u32, b: Vec<Option<u8>> }",
    "pub struct T(pub u8, String);",
    "enum E { A, B(u8), C { x: i64 } }",
    "impl S { fn m(&self) -> u32 { self.a } }",
    "impl<T> Drop for W<T> { fn drop(&mut self) { } }",
    "use a::{b, c::d as e, f::*};",
    "mod m { pub fn inner() { } }",
    "trait Tr { fn req(&self); }",
    "macro_rules! mk { ($x:expr) => { $x + 1 }; }",
    "metric_catalog! { A => \"a\", B => \"b\" }",
    "println!(\"{} {:?}\", 1, (2, 3));",
    "#[derive(Clone, Serialize)]",
    "#[cfg(test)]",
    "let c = |a: u32, b| a + b;",
    "let s = \"string with } and { and // not a comment\";",
    "let ch = '}';",
    "let lt: &'static str = \"x\";",
    "// line comment with fn struct impl",
    "/* block comment { unbalanced */",
    "let shifted = x >> 2 < y;",
    "let t = a::<Vec<u8>>::new();",
    "where T: Iterator<Item = (u8, u8)>",
    "const N: usize = 4;",
    "static NAME: &str = \"n\";",
    "type Alias = Result<(), String>;",
    "extern crate serde;",
    "; ; ,",
    "-> . :: # ! ? @",
    "union U { f: f32, i: u32 }",
    "unsafe impl Send for S { }",
    "pub(crate) fn vis() { }",
    "if let Some(x) = opt { x } else { 0 }",
    "match v { 0 => 1, _ => 2 }",
    "for i in 0..n { acc += i; }",
    "async fn later() { }",
    "r#fn",
    "1_000_000u64 0xFF 1.5e-3",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random concatenations of the fragments — including orderings that
    /// are nowhere near valid Rust — must never panic the parser, and
    /// whenever it accepts the input its spans must still tile.
    #[test]
    fn fragment_soup_never_panics(
        picks in proptest::collection::vec(0usize..40, 0..24),
    ) {
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
            .collect::<Vec<_>>()
            .join("\n");
        let lexed = lex(&src);
        if let Ok(parsed) = parse(&lexed) {
            assert_tiles(&parsed, lexed.tokens.len(), "soup");
        }
    }

    /// Arbitrary byte soup mapped into ASCII: the parser may reject it
    /// (unclosed delimiters), but must return rather than panic or hang.
    #[test]
    fn ascii_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src: String = bytes.iter().map(|&b| (b % 0x60 + 0x20) as char).collect();
        let lexed = lex(&src);
        let _ = parse(&lexed);
    }
}
