//! Seeded `no-unseeded-rng` violations.

use rand::{Rng, SeedableRng};

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn fresh() -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::from_entropy()
}

/// Seeded draws are the sanctioned path: not flagged.
pub fn seeded(seed: u64) -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::seed_from_u64(seed)
}
