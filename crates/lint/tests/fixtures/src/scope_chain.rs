//! Seeded *transitive* `thread-scope-hygiene` violations: the closure
//! body is pure at the token level, but a called helper reaches a send
//! two hops down the call graph.

use crate::chain_helpers::{fan_out_gradients, pure_norm};
use crate::exec::run_workers;

pub struct ChainEngine;

impl ChainEngine {
    /// Positive: `fan_out_gradients` → `ship_block` → `net.send` — the
    /// send is two files away but still races the ordered replay.
    pub fn chained_send(&mut self, threads: usize, n: usize) {
        let _out = run_workers(threads, n, |w| {
            fan_out_gradients(w);
            w
        });
    }

    /// Clean: the helper is pure compute all the way down.
    pub fn chained_pure(&mut self, threads: usize, n: usize) {
        let _out = run_workers(threads, n, |w| {
            pure_norm(w);
            w
        });
    }
}
