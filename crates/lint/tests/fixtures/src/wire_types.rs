//! Seeded `wire-schema-lock` violations against the fixture `wire.lock`.
//! Never compiled — only lexed and parsed.

use serde::{Deserialize, Serialize};

/// Clean: matches its lock entry exactly.
#[derive(Clone, Serialize, Deserialize)]
pub struct StableHeader {
    pub epoch: u32,
    pub len: u32,
}

/// Positive: the lock says `ratio: f32`; widening it changes every byte
/// on the simulated wire.
#[derive(Clone, Serialize, Deserialize)]
pub struct DriftedStats {
    pub ratio: f64,
}

/// Positive: a new wire type with no lock entry.
#[derive(Clone, Serialize, Deserialize)]
pub struct Unlocked {
    pub tag: u8,
}

/// Clean: not a wire type, so not fingerprinted at all.
#[derive(Clone, Debug)]
pub struct ScratchState {
    pub cursor: usize,
}
