//! Entry point for the reachability-based `no-panic-hot-path` fixture:
//! this file is *outside* the rule's include list, and so is the helper
//! it calls — only the call-graph pass connects the entry point to the
//! unwrap it must flag.

use crate::panic_helper::load_slot;

pub fn run_epoch_fixture(n: usize) -> u32 {
    load_slot(n)
}
