//! Bait for `disjoint-band-writes`: pool-dispatched closures that write
//! captured shared state, directly and through a helper call.

pub type Task<'s> = Box<dyn FnOnce() + Send + 's>;

pub struct Pool;

impl Pool {
    pub fn run(&self, tasks: Vec<Task<'_>>) {
        for t in tasks {
            t();
        }
    }
}

/// Direct racy capture: every lane pushes onto the one shared log.
pub fn racy_fanout(pool: &Pool, bands: usize, shared_log: &mut Vec<usize>) {
    let mut tasks: Vec<Task<'_>> = Vec::new();
    for b in 0..bands {
        tasks.push(Box::new(move || {
            shared_log.push(b);
        }));
    }
    pool.run(tasks);
}

/// Helper that writes module-shared state; reaching it from a lane closure
/// is as racy as inlining the write.
pub fn mark_shared_done(idx: usize) {
    COMPLETED.push(idx);
}

/// Interprocedural racy capture: the closure itself only calls a helper,
/// but the helper's write set taints the whole chain.
pub fn chained_fanout(pool: &Pool, bands: usize) {
    let mut tasks: Vec<Task<'_>> = Vec::new();
    for b in 0..bands {
        tasks.push(Box::new(move || {
            mark_shared_done(b);
        }));
    }
    pool.run(tasks);
}
