//! Bait for `lock-then-wait-hygiene`: a wakeup-unsafe condvar wait and a
//! lock-order inversion under a live guard.

use std::sync::{Condvar, Mutex, MutexGuard};

pub struct Channel {
    pub state: Mutex<Vec<u32>>,
    pub other: Mutex<u32>,
    pub ready: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Channel {
    /// Waits once with no predicate recheck: a spurious wakeup returns an
    /// empty queue to the caller.
    pub fn take_unguarded(&self) -> Option<u32> {
        let state = lock(&self.state);
        let mut state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        state.pop()
    }

    /// Acquires the second mutex while the first guard is still live:
    /// lock-order inversion against any path taking them the other way.
    pub fn drain_and_count(&self) -> u32 {
        let mut state = lock(&self.state);
        state.clear();
        let other = lock(&self.other);
        *other
    }
}
