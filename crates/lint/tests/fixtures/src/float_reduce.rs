//! Seeded `no-float-unordered-reduce` violations. Never compiled — only
//! lexed by the golden test.

use std::collections::HashMap;
use std::sync::mpsc::Receiver;

/// Positive: float sum over a hash container visits values in
/// process-random order, and FP addition is not associative.
pub fn bad_sum(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum()
}

/// Positive: `fold` is just a spelled-out reduce.
pub fn bad_fold(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().fold(0.0, |acc, x| acc + x)
}

/// Positive: mpsc receivers yield in thread-completion order.
pub fn bad_channel_sum(rx: Receiver<f32>) -> f32 {
    rx.iter().sum()
}

/// Suppressed: a documented exception stays quiet.
pub fn tolerated(weights: &HashMap<u32, f64>) -> f64 {
    // ec-lint: allow(no-float-unordered-reduce)
    weights.values().sum()
}

/// Clean: integer addition commutes exactly, the turbofish proves it.
pub fn good_int_sum(counts: &HashMap<u32, u64>) -> u64 {
    counts.values().copied().sum::<u64>()
}

/// Clean: slices reduce in index order.
pub fn good_ordered_sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// Clean: lookups and length reads never depend on iteration order.
pub fn good_lookup(weights: &HashMap<u32, f64>) -> usize {
    weights.len()
}
