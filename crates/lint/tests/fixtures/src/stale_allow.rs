//! Seeded `unused-suppression` violations. Never compiled — only lexed.

/// Clean: this suppression earns its keep (the `Instant` below would
/// otherwise be a `no-wall-clock` finding).
pub fn sanctioned_timer() {
    // ec-lint: allow(no-wall-clock)
    let _t = std::time::Instant::now();
}

/// Positive: nothing on this or the next line fires any rule.
// ec-lint: allow(no-wall-clock)
pub fn stale_escape() {}

/// Positive: names a rule that does not exist.
// ec-lint: allow(no-flux-capacitor)
pub fn misspelled_escape() {}
