//! Seeded `thread-scope-hygiene` violations. Never compiled — only lexed
//! and parsed by the golden test.

use crate::exec::run_workers;

pub struct Engine;

impl Engine {
    /// Positive: the closure touches `self` and emits a send — both must
    /// wait for the engine thread's ordered replay.
    pub fn bad_closure(&mut self, threads: usize, n: usize) {
        let _out = run_workers(threads, n, |w| {
            self.accumulate(w);
            network.send(w, w as u64);
            w
        });
    }

    /// Positive: telemetry writes and `record_*` helpers inside the
    /// closure race the replay ordering.
    pub fn bad_telemetry(&mut self, threads: usize, n: usize) {
        let _out = run_workers(threads, n, |w| {
            telemetry.add(id, lbl, 1);
            record_latency(w);
            w
        });
    }

    /// Suppressed: a documented exception stays quiet.
    pub fn tolerated(&mut self, threads: usize, n: usize) {
        let _out = run_workers(threads, n, |w| {
            // ec-lint: allow(thread-scope-hygiene)
            scratch_ring.push(w);
            w
        });
    }

    /// Clean: pure compute in the closure, sends on the replay pass.
    pub fn good_replay(&mut self, threads: usize, n: usize) {
        let out = run_workers(threads, n, |w| matmul(w));
        for (w, r) in out.iter().enumerate() {
            network.send(w, r);
            telemetry.add(id, lbl, 1);
        }
    }
}

/// Positive: `scope.spawn` closures get the same treatment.
pub fn bad_scope_spawn(sink: &mut Sink) {
    std::thread::scope(|s| {
        s.spawn(move || {
            sink.observe(id, lbl, 1.0);
        });
    });
}
