//! Seeded `wire-hygiene` violations.

use serde::{Deserialize, Serialize};

/// Encodes but cannot decode, and no round-trip test mentions it:
/// two findings.
#[derive(Clone, Debug, Serialize)]
pub struct OneWayHeader {
    pub version: u32,
    pub len: u64,
}

/// Derives both directions and is exercised below: clean.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoveredPayload {
    pub bytes: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_payload_round_trips() {
        let msg = CoveredPayload { bytes: vec![1, 2, 3] };
        let back = msg.clone();
        assert_eq!(msg, back);
    }
}
