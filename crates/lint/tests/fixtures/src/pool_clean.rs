//! Clean counterpart to `pool_racy.rs`: band-disciplined closures that
//! only write through their disjoint `&mut` slices and closure locals.

pub fn run_bands(rows: usize, body: &dyn Fn(usize, &mut [f32])) {
    let _ = (rows, body);
}

/// The sanctioned idiom: split the output, move each band into its
/// closure, write only through the band and loop locals.
pub fn banded_fill(out: &mut [f32], bands: usize, cols: usize) {
    let mut rest = out;
    let mut row0 = 0usize;
    for _ in 0..bands {
        let here = rest.len().min(cols);
        let (band, tail) = rest.split_at_mut(here);
        rest = tail;
        let start = row0;
        run_bands(here, &|r, dst| {
            let mut acc = 0.0f32;
            acc += (start + r) as f32;
            dst[0] = acc;
            band.len();
        });
        row0 += here;
    }
    let _ = row0;
}

/// Writing the band by element and by slot both stay inside the lattice.
pub fn banded_scale(out: &mut [f32], cols: usize) {
    let (band, _tail) = out.split_at_mut(cols);
    run_bands(cols, &|r, _dst| {
        let mut local = vec![0.0f32; 4];
        local[0] = r as f32;
        band.len();
    });
}
