//! Seeded `no-panic-hot-path` violations.

pub fn take(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

pub fn must(res: Result<u32, String>) -> u32 {
    res.expect("hot path should not fail")
}

pub fn reject() -> u32 {
    panic!("tearing down the cluster")
}

pub fn later() -> u32 {
    todo!()
}

/// Invariant checks on entry are allowed: not flagged.
pub fn guarded(n: usize) -> usize {
    assert!(n > 0, "caller must pass a positive count");
    n - 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        super::take(Some(1));
        None::<u32>.unwrap_or(0);
        Some(2u32).unwrap();
    }
}
