//! Record sites for the fixture catalog in `metrics.rs`: one declared id,
//! one undeclared. Never compiled — only lexed and parsed.

use crate::metrics::MetricId;

pub fn record(sink: &mut Sink, lbl: Labels) {
    sink.add(MetricId::Alive, lbl, 1);
    sink.add(MetricId::Ghost, lbl, 1);
}
