//! Clean counterpart to `condvar_bad.rs`: predicate-rechecking waits and
//! sequential (drop-then-lock) mutex use.

use std::sync::{Condvar, Mutex, MutexGuard};

pub struct Channel {
    pub state: Mutex<Vec<u32>>,
    pub other: Mutex<u32>,
    pub ready: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Channel {
    /// The sanctioned wait shape: loop until the predicate really holds.
    pub fn take(&self) -> u32 {
        let mut state = lock(&self.state);
        loop {
            if let Some(v) = state.pop() {
                return v;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Sequential locking: the first guard is dropped before the second
    /// mutex is touched.
    pub fn drain_then_count(&self) -> u32 {
        let mut state = lock(&self.state);
        state.clear();
        drop(state);
        let other = lock(&self.other);
        *other
    }
}
