//! Clean counterpart to `atomics_bad.rs`: every weak-ordering site carries
//! a sound() justification and an `unsafe.lock` entry. The committed
//! fixture lock deliberately drifts the `relaxed#0` fingerprint and keeps a
//! stale `atomics_removed.rs` entry, seeding the lockfile findings.

use std::sync::atomic::{AtomicU64, Ordering};

pub static TICKETS: AtomicU64 = AtomicU64::new(0);

/// Justified Relaxed: the ticket value is only compared for uniqueness.
pub fn next_ticket() -> u64 {
    // ec-lint: sound(ticket ids only need uniqueness, nothing synchronizes on them)
    TICKETS.fetch_add(1, Ordering::Relaxed)
}

/// Justified unsafe: the caller contract guarantees the index.
pub fn head_unchecked(buf: &[f32]) -> f32 {
    debug_assert!(!buf.is_empty());
    // ec-lint: sound(callers pass non-empty buffers, checked by the debug_assert above)
    unsafe { *buf.get_unchecked(0) }
}
