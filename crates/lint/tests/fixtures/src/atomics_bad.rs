//! Bait for `atomics-ordering-audit`: unjustified weak-ordering sites and
//! a stale justification marker.

use std::sync::atomic::{AtomicU64, Ordering};

pub static SEQ: AtomicU64 = AtomicU64::new(0);

/// Unjustified `Ordering::Relaxed` store: no sound() marker in sight.
pub fn bump_unjustified() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Unjustified `unsafe` block: the invariant is never stated.
pub fn first_unchecked(buf: &[f32]) -> f32 {
    unsafe { *buf.get_unchecked(0) }
}

/// Stale marker: the line below uses SeqCst, which needs no justification,
/// so the sound() comment justifies nothing.
pub fn bump_seqcst() -> u64 {
    // ec-lint: sound(left over from a Relaxed draft of this counter)
    SEQ.fetch_add(1, Ordering::SeqCst)
}
