//! Seeded `metric-catalog-sync` catalog (deliberately out of sync with
//! `metrics_use.rs`). Never compiled — only lexed and parsed.

metric_catalog! {
    Alive => { "fixture.alive", Counter, "events", [epoch] },
    DeadMetric => { "fixture.dead", Gauge, "units", [epoch] },
    // ec-lint: allow(metric-catalog-sync)
    Tolerated => { "fixture.tolerated", Counter, "events", [epoch] },
}
