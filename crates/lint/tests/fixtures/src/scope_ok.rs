//! Clean `thread-scope-hygiene` fixture: `run_workers` here resolves
//! through the symbol table to a local pool helper, not
//! `exec::run_workers`, so the rule skips the whole call — even though the
//! closure contains a send.

use crate::pool::run_workers;

pub fn unrelated_helper(n: usize) {
    run_workers(n, |w| side_channel.send(w));
}
