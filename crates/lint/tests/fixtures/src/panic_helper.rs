//! Helper reachable from `run_epoch_fixture`; its unwrap is flagged by
//! the call-graph pass even though this file is outside the token-scan
//! include list. `lookup` itself is clean and must stay unflagged.

pub fn load_slot(n: usize) -> u32 {
    lookup(n).unwrap()
}

fn lookup(n: usize) -> Option<u32> {
    if n > 0 {
        Some(n as u32)
    } else {
        None
    }
}
