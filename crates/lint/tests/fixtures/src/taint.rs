//! Seeded `determinism-taint` violations: a serialization sink whose
//! helper chain reaches unordered iteration. `CleanReport::to_json`
//! proves a sink with a pure call graph stays quiet.

use crate::chain_helpers::read_unordered;

pub struct FixtureReport;

impl FixtureReport {
    /// Positive: `to_json` → `read_unordered` → HashMap iteration.
    pub fn to_json(&self) -> String {
        let total = read_unordered(self.counts);
        format!("{{\"total\":{total}}}")
    }
}

pub struct CleanReport;

impl CleanReport {
    /// Clean: fixed arithmetic only.
    pub fn to_json(&self) -> String {
        String::from("{}")
    }
}
