//! Seeded `no-unordered-iteration` violations. Never compiled — only lexed
//! by the golden test.

use std::collections::{HashMap, HashSet};

pub fn sum_scores(scores: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in scores.iter() {
        total += v;
    }
    total
}

pub fn visit_all(ids: &HashSet<u32>) -> u32 {
    let mut hits = 0;
    for id in ids {
        hits += *id;
    }
    hits
}

pub fn key_list(index: &HashMap<String, u32>) -> Vec<String> {
    index.keys().cloned().collect()
}

pub fn drain_into(mut pending: HashMap<u32, Vec<u8>>) -> Vec<Vec<u8>> {
    pending.drain().map(|(_, v)| v).collect()
}

/// Lookups never depend on iteration order: not flagged.
pub fn lookup(index: &HashMap<String, u32>, key: &str) -> Option<u32> {
    index.get(key).copied()
}

/// A deliberate, documented exception: the order feeds a sort immediately.
pub fn sorted_keys(index: &HashMap<String, u32>) -> Vec<String> {
    // ec-lint: allow(no-unordered-iteration)
    let mut keys: Vec<String> = index.keys().cloned().collect();
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        for _ in m.iter() {}
    }
}
