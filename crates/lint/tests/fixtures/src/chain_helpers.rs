//! Helpers for the cross-file chain fixtures. `ship_block` is the only
//! function that touches the network, and `read_unordered` the only one
//! that walks a hash container; everything upstream picks those effects
//! up transitively through the call graph.

pub fn fan_out_gradients(w: usize) {
    ship_block(w);
}

pub fn ship_block(w: usize) {
    net.send(w, w as u64);
}

pub fn pure_norm(w: usize) -> usize {
    w.saturating_mul(3)
}

pub fn read_unordered(counts: HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (_k, v) in counts.iter() {
        acc += v;
    }
    acc
}
