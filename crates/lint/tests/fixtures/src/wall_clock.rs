//! Seeded `no-wall-clock` violations.

use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}
