//! The workspace symbol table: parsed files, crate/module paths, per-file
//! import maps, and fully-qualified definitions resolved across all crates.
//!
//! Resolution is deliberately modest — no trait lookup, no glob expansion,
//! no method resolution — because the semantic rules only need two
//! questions answered: *what fully-qualified path does this local name
//! refer to* (via [`Workspace::resolve`]) and *where is this
//! fully-qualified item defined* (via [`Workspace::defs`]). That is enough
//! to tell `exec::run_workers` from an unrelated `run_workers`, or a
//! `MetricId` import alias from a coincidental identifier.

use crate::lexer::LexedFile;
use crate::parser::{self, Item, ItemKind, ParsedFile};
use std::collections::BTreeMap;
use std::path::Path;

/// One fully-qualified item definition.
#[derive(Clone, Debug)]
pub struct SymbolDef {
    /// File the item is defined in (workspace-relative, `/`-separated).
    pub path: String,
    /// 1-based line of the definition.
    pub line: usize,
    /// What kind of item it is.
    pub kind: ItemKind,
}

/// Parsed files plus cross-crate name resolution.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Parsed item trees, keyed by workspace-relative path.
    pub parsed: BTreeMap<String, ParsedFile>,
    /// Fully-qualified path (`ec_graph::exec::run_workers`) → definition.
    pub defs: BTreeMap<String, SymbolDef>,
    /// Per-file module path (`crates/core/src/exec.rs` → `ec_graph::exec`).
    modules: BTreeMap<String, String>,
    /// Per-file import map: local name → fully-qualified path.
    imports: BTreeMap<String, BTreeMap<String, String>>,
}

impl Workspace {
    /// Parses every lexed file and builds the symbol table. Crate names
    /// come from each package's `Cargo.toml` under `root`; files whose
    /// package cannot be identified (e.g. the repo-root `tests/`) fall
    /// back to path-derived module names.
    ///
    /// # Errors
    /// A file whose item structure cannot be parsed (unclosed delimiter).
    pub fn build(root: &Path, files: &BTreeMap<String, LexedFile>) -> Result<Self, String> {
        let mut ws = Self::default();
        let mut crate_names: BTreeMap<String, String> = BTreeMap::new();
        for rel in files.keys() {
            let parsed = parser::parse(&files[rel]).map_err(|e| format!("{rel}: {e}"))?;
            let module = module_path(root, rel, &mut crate_names);
            ws.modules.insert(rel.clone(), module);
            ws.parsed.insert(rel.clone(), parsed);
        }
        for (rel, parsed) in &ws.parsed {
            let module = &ws.modules[rel];
            let mut imports = BTreeMap::new();
            collect_defs(&parsed.items, module, rel, &mut ws.defs, &mut imports);
            ws.imports.insert(rel.clone(), imports);
        }
        Ok(ws)
    }

    /// The module path of a file (`ec_graph::exec`), when known.
    pub fn module_of(&self, rel: &str) -> Option<&str> {
        self.modules.get(rel).map(String::as_str)
    }

    /// Resolves a bare name used in `rel` to a fully-qualified path:
    /// first through the file's `use` imports, then as a sibling item of
    /// the file's own module.
    pub fn resolve(&self, rel: &str, name: &str) -> Option<String> {
        if let Some(fq) = self.imports.get(rel).and_then(|m| m.get(name)) {
            return Some(fq.clone());
        }
        let module = self.modules.get(rel)?;
        let candidate = format!("{module}::{name}");
        self.defs.contains_key(&candidate).then_some(candidate)
    }

    /// Local names (including `use … as` aliases) in `rel` that refer to
    /// the item `target_tail` (a `::`-separated path suffix, e.g.
    /// `registry::MetricId` or just `MetricId`).
    pub fn local_names_for(&self, rel: &str, target_tail: &str) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(map) = self.imports.get(rel) {
            for (local, fq) in map {
                if fq == target_tail || fq.ends_with(&format!("::{target_tail}")) {
                    out.push(local.clone());
                }
            }
        }
        out
    }
}

/// Derives the module path for `rel`, caching crate names per package dir.
fn module_path(root: &Path, rel: &str, cache: &mut BTreeMap<String, String>) -> String {
    // Split `<pkg_dir>/src/<mods…>.rs` / `<pkg_dir>/tests/<name>.rs` etc.
    let parts: Vec<&str> = rel.split('/').collect();
    let split = parts.iter().position(|p| matches!(*p, "src" | "tests" | "examples" | "benches"));
    let (pkg_dir, tail) = match split {
        Some(idx) => (parts[..idx].join("/"), &parts[idx..]),
        None => (String::new(), &parts[..]),
    };
    let crate_name =
        cache.entry(pkg_dir.clone()).or_insert_with(|| read_crate_name(root, &pkg_dir)).clone();
    let mut segs = vec![crate_name];
    // `src/lib.rs`, `src/main.rs`, `tests/<n>.rs` stay at the crate root;
    // `src/a/b.rs` and `src/a/mod.rs` become `crate::a::b` / `crate::a`.
    let mods = tail.iter().skip(1); // skip the src/tests/examples component
    for m in mods {
        let m = m.strip_suffix(".rs").unwrap_or(m);
        if matches!(m, "lib" | "main" | "mod") {
            continue;
        }
        if *tail.first().unwrap_or(&"src") != "src" {
            // Integration tests/examples are their own tiny crates; prefix
            // them so their items can't shadow library symbols.
            segs.push(format!("test_{m}"));
        } else {
            segs.push(m.to_string());
        }
    }
    segs.join("::")
}

/// Reads `name = "…"` from `<pkg_dir>/Cargo.toml`, hyphens normalized to
/// underscores; falls back to the directory name (or `workspace_root`).
fn read_crate_name(root: &Path, pkg_dir: &str) -> String {
    let manifest = if pkg_dir.is_empty() {
        root.join("Cargo.toml")
    } else {
        root.join(pkg_dir).join("Cargo.toml")
    };
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        for line in text.lines() {
            let line = line.trim();
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start();
                if let Some(v) = v.strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    if !v.is_empty() {
                        return v.replace('-', "_");
                    }
                }
            }
            if line.starts_with('[') && line != "[package]" {
                break; // only the [package] header's name counts
            }
        }
    }
    let fallback = pkg_dir.rsplit('/').next().unwrap_or(pkg_dir);
    if fallback.is_empty() {
        "workspace_root".into()
    } else {
        fallback.replace('-', "_")
    }
}

/// Records item definitions under `module` and accumulates the file's
/// import map (module-level `use` declarations, `crate::` normalized).
fn collect_defs(
    items: &[Item],
    module: &str,
    rel: &str,
    defs: &mut BTreeMap<String, SymbolDef>,
    imports: &mut BTreeMap<String, String>,
) {
    let crate_name = module.split("::").next().unwrap_or(module);
    for item in items {
        match item.kind {
            ItemKind::Use => {
                for (local, fq) in &item.imports {
                    if local == "*" {
                        continue; // globs stay unresolved on purpose
                    }
                    let fq = match fq.strip_prefix("crate::") {
                        Some(tail) => format!("{crate_name}::{tail}"),
                        None if fq == "crate" => crate_name.to_string(),
                        None => fq.clone(),
                    };
                    imports.insert(local.clone(), fq);
                }
            }
            ItemKind::Mod => {
                if let Some(name) = &item.name {
                    let sub = format!("{module}::{name}");
                    defs.insert(
                        sub.clone(),
                        SymbolDef { path: rel.into(), line: item.line, kind: ItemKind::Mod },
                    );
                    // Inline-mod children are defined under the submodule,
                    // but their `use` imports still land in this file's map.
                    collect_defs(&item.children, &sub, rel, defs, imports);
                }
            }
            ItemKind::Impl => {
                // Associated items are reachable as `Type::method`.
                if let Some(ty) = &item.impl_ty {
                    let base = ty.split('<').next().unwrap_or(ty).trim();
                    for child in &item.children {
                        if let Some(name) = &child.name {
                            defs.insert(
                                format!("{module}::{base}::{name}"),
                                SymbolDef { path: rel.into(), line: child.line, kind: child.kind },
                            );
                        }
                    }
                }
            }
            _ => {
                if let Some(name) = &item.name {
                    defs.insert(
                        format!("{module}::{name}"),
                        SymbolDef { path: rel.into(), line: item.line, kind: item.kind },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ws_from(files: &[(&str, &str)]) -> Workspace {
        let map: BTreeMap<String, LexedFile> =
            files.iter().map(|(p, src)| (p.to_string(), lex(src))).collect();
        // A root that has no Cargo.tomls: crate names fall back to dir names.
        Workspace::build(Path::new("/nonexistent-ws-root"), &map).expect("builds")
    }

    #[test]
    fn defs_are_fully_qualified_by_module_path() {
        let ws = ws_from(&[
            ("crates/core/src/exec.rs", "pub fn run_workers() {}"),
            ("crates/core/src/lib.rs", "pub mod exec;"),
        ]);
        assert!(ws.defs.contains_key("core::exec::run_workers"), "{:?}", ws.defs.keys());
        assert_eq!(ws.module_of("crates/core/src/exec.rs"), Some("core::exec"));
    }

    #[test]
    fn imports_resolve_crate_prefix_and_aliases() {
        let ws = ws_from(&[
            (
                "crates/core/src/engine.rs",
                "use crate::exec;\nuse ec_trace::registry::MetricId as Id;",
            ),
            ("crates/core/src/exec.rs", "pub fn run_workers() {}"),
        ]);
        assert_eq!(ws.resolve("crates/core/src/engine.rs", "exec").as_deref(), Some("core::exec"));
        assert_eq!(
            ws.resolve("crates/core/src/engine.rs", "Id").as_deref(),
            Some("ec_trace::registry::MetricId")
        );
        assert_eq!(
            ws.local_names_for("crates/core/src/engine.rs", "MetricId"),
            vec!["Id".to_string()]
        );
    }

    #[test]
    fn sibling_items_resolve_without_imports() {
        let ws = ws_from(&[(
            "crates/core/src/exec.rs",
            "pub fn run_workers() {}\nfn caller() { run_workers(); }",
        )]);
        assert_eq!(
            ws.resolve("crates/core/src/exec.rs", "run_workers").as_deref(),
            Some("core::exec::run_workers")
        );
    }

    #[test]
    fn impl_methods_are_reachable_as_type_method() {
        let ws = ws_from(&[(
            "crates/comm/src/network.rs",
            "pub struct SimNetwork;\nimpl SimNetwork { pub fn send(&mut self) {} }",
        )]);
        assert!(ws.defs.contains_key("comm::network::SimNetwork::send"));
    }

    #[test]
    fn integration_tests_get_their_own_namespace() {
        let ws = ws_from(&[("tests/determinism_suite.rs", "fn helper() {}")]);
        assert!(
            ws.defs.keys().any(|k| k.contains("test_determinism_suite")),
            "{:?}",
            ws.defs.keys()
        );
    }
}
