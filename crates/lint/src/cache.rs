//! The incremental analysis cache: per-file [`FileSummary`] results keyed
//! by a content hash, stored as JSON under `target/ec-lint-cache`.
//!
//! The cached unit is exactly the part of the analysis that is a pure
//! function of one file's bytes: its function list with direct effects
//! and *unresolved* raw calls. Resolution and the fixpoint are cross-file
//! questions, re-answered from the summaries on every run — so a warm
//! cache changes where summaries come from, never what they say, and the
//! cold/warm byte-identity test in `tests/golden.rs` holds by
//! construction. The key mixes the file's content hash, its module path
//! (which depends on `Cargo.toml`, not the file), its workspace-relative
//! path, and [`ANALYSIS_VERSION`]; bumping the version invalidates every
//! entry when the summary format or the detectors change. Corrupt or
//! unreadable entries are treated as misses, never errors.

use crate::callgraph::{FileSummary, FnNode, RawCall, RawCallKind};
use crate::effects::{Effect, EffectSet, EffectSite};
use serde_json::{json, Value};
use std::path::{Path, PathBuf};

/// Bump when the summary JSON shape or the direct-effect detectors change.
pub const ANALYSIS_VERSION: u32 = 1;

/// FNV-1a, 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key for one file's summary.
pub fn summary_key(rel: &str, src: &str, module: &str) -> u64 {
    let mut h = fnv1a(rel.as_bytes());
    h ^= fnv1a(src.as_bytes()).rotate_left(17);
    h ^= fnv1a(module.as_bytes()).rotate_left(34);
    h ^= u64::from(ANALYSIS_VERSION).rotate_left(51);
    h
}

/// A directory of cached summaries.
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) the cache directory. Returns `None` when
    /// the directory cannot be created — the caller just runs cold.
    pub fn open(dir: &Path) -> Option<Self> {
        std::fs::create_dir_all(dir).ok()?;
        Some(Self { dir: dir.to_path_buf() })
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Loads the summary stored under `key`, if present and well-formed.
    pub fn load(&self, key: u64) -> Option<FileSummary> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let v: Value = serde_json::from_str(&text).ok()?;
        summary_from_json(&v)
    }

    /// Stores `summary` under `key`. Write failures are ignored: a cache
    /// that cannot persist is just a slow cache.
    pub fn store(&self, key: u64, summary: &FileSummary) {
        let _ = std::fs::write(self.entry_path(key), summary_to_json(summary).to_string());
    }
}

fn effect_to_str(e: Effect) -> &'static str {
    e.name()
}

fn effect_from_str(s: &str) -> Option<Effect> {
    Effect::ALL.into_iter().find(|e| e.name() == s)
}

/// Serializes a summary. Field order is fixed by the literal, so the same
/// summary always produces the same bytes.
pub fn summary_to_json(s: &FileSummary) -> Value {
    json!({
        "version": ANALYSIS_VERSION,
        "rel": s.rel,
        "module": s.module,
        "fns": s.fns.iter().map(fn_to_json).collect::<Vec<_>>(),
    })
}

fn fn_to_json(f: &FnNode) -> Value {
    json!({
        "fq": f.fq,
        "path": f.path,
        "line": f.line,
        "name": f.name,
        "impl_ty": f.impl_ty,
        "is_test": f.is_test,
        "body": f.body.map(|(a, b)| vec![a, b]),
        "direct": f.direct.0,
        "sites": f.sites.iter().map(|site| json!({
            "effect": effect_to_str(site.effect),
            "line": site.line,
            "what": site.what,
        })).collect::<Vec<_>>(),
        "calls": f.calls.iter().map(call_to_json).collect::<Vec<_>>(),
    })
}

fn call_to_json(c: &RawCall) -> Value {
    let kind = match &c.kind {
        RawCallKind::Free(name) => json!({"free": name}),
        RawCallKind::Method { name, recv } => json!({"method": name, "recv": recv}),
        RawCallKind::Qualified(segs) => json!({"qualified": segs}),
    };
    json!({"kind": kind, "line": c.line, "tok": c.tok})
}

/// Deserializes a summary; `None` on any shape or version mismatch.
pub fn summary_from_json(v: &Value) -> Option<FileSummary> {
    if v.get("version")?.as_u64()? != u64::from(ANALYSIS_VERSION) {
        return None;
    }
    let fns = v.get("fns")?.as_array()?.iter().map(fn_from_json).collect::<Option<Vec<_>>>()?;
    Some(FileSummary {
        rel: v.get("rel")?.as_str()?.to_string(),
        module: v.get("module")?.as_str()?.to_string(),
        fns,
    })
}

fn fn_from_json(v: &Value) -> Option<FnNode> {
    let body = match v.get("body")? {
        Value::Null => None,
        Value::Array(a) if a.len() == 2 => Some((a[0].as_u64()? as usize, a[1].as_u64()? as usize)),
        _ => return None,
    };
    let sites = v
        .get("sites")?
        .as_array()?
        .iter()
        .map(|s| {
            Some(EffectSite {
                effect: effect_from_str(s.get("effect")?.as_str()?)?,
                line: s.get("line")?.as_u64()? as usize,
                what: s.get("what")?.as_str()?.to_string(),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let calls =
        v.get("calls")?.as_array()?.iter().map(call_from_json).collect::<Option<Vec<_>>>()?;
    Some(FnNode {
        fq: v.get("fq")?.as_str()?.to_string(),
        path: v.get("path")?.as_str()?.to_string(),
        line: v.get("line")?.as_u64()? as usize,
        name: v.get("name")?.as_str()?.to_string(),
        impl_ty: match v.get("impl_ty")? {
            Value::Null => None,
            Value::String(s) => Some(s.clone()),
            _ => return None,
        },
        is_test: v.get("is_test")?.as_bool()?,
        body,
        direct: EffectSet(u8::try_from(v.get("direct")?.as_u64()?).ok()?),
        sites,
        calls,
    })
}

fn call_from_json(v: &Value) -> Option<RawCall> {
    let kind = v.get("kind")?;
    let kind = if let Some(name) = kind.get("free").and_then(Value::as_str) {
        RawCallKind::Free(name.to_string())
    } else if let Some(name) = kind.get("method").and_then(Value::as_str) {
        let recv = match kind.get("recv")? {
            Value::Null => None,
            Value::String(s) => Some(s.clone()),
            _ => return None,
        };
        RawCallKind::Method { name: name.to_string(), recv }
    } else if let Some(segs) = kind.get("qualified").and_then(Value::as_array) {
        RawCallKind::Qualified(
            segs.iter().map(|s| s.as_str().map(str::to_string)).collect::<Option<Vec<_>>>()?,
        )
    } else {
        return None;
    };
    Some(RawCall {
        kind,
        line: v.get("line")?.as_u64()? as usize,
        tok: v.get("tok")?.as_u64()? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser;

    fn sample_summary() -> FileSummary {
        let src = "use crate::helpers::ship;\n\
                   fn go(m: HashMap<u32, u32>) {\n\
                   ship();\n\
                   net.send(0, b);\n\
                   for k in &m { exec::fan_out(k); }\n\
                   let t = Instant::now();\n\
                   }";
        let lexed = lex(src);
        let parsed = parser::parse(&lexed).unwrap();
        crate::callgraph::summarize_file("crates/core/src/a.rs", "core::a", &lexed, &parsed)
    }

    #[test]
    fn summaries_round_trip_through_json() {
        let s = sample_summary();
        let v = summary_to_json(&s);
        let back = summary_from_json(&v).expect("round-trips");
        assert_eq!(back.rel, s.rel);
        assert_eq!(back.module, s.module);
        assert_eq!(back.fns.len(), s.fns.len());
        for (a, b) in s.fns.iter().zip(&back.fns) {
            assert_eq!(a.fq, b.fq);
            assert_eq!(a.direct, b.direct);
            assert_eq!(a.sites, b.sites);
            assert_eq!(a.calls, b.calls);
            assert_eq!(a.body, b.body);
        }
        // Byte-determinism of the stored form itself.
        assert_eq!(v.to_string(), summary_to_json(&s).to_string());
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let mut v = summary_to_json(&sample_summary());
        v["version"] = json!(ANALYSIS_VERSION + 1);
        assert!(summary_from_json(&v).is_none());
    }

    #[test]
    fn keys_separate_content_path_and_module() {
        let k = summary_key("a.rs", "fn f() {}", "m");
        assert_ne!(k, summary_key("a.rs", "fn g() {}", "m"), "content");
        assert_ne!(k, summary_key("b.rs", "fn f() {}", "m"), "path");
        assert_ne!(k, summary_key("a.rs", "fn f() {}", "n"), "module");
        assert_eq!(k, summary_key("a.rs", "fn f() {}", "m"), "deterministic");
    }

    #[test]
    fn cache_stores_and_loads() {
        let dir = std::env::temp_dir().join(format!("ec-lint-cache-test-{}", std::process::id()));
        let cache = Cache::open(&dir).expect("opens");
        let s = sample_summary();
        let key = summary_key(&s.rel, "whatever", &s.module);
        assert!(cache.load(key).is_none(), "cold");
        cache.store(key, &s);
        let warm = cache.load(key).expect("warm hit");
        assert_eq!(warm.fns.len(), s.fns.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
