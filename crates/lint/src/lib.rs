//! # `ec-lint` — workspace static analysis for determinism invariants
//!
//! The reproduction's claims rest on the simulated cluster being a
//! *measurement instrument*: two runs of one config must produce identical
//! traffic, losses, and reports. Nothing in rustc or clippy stops a
//! contributor from iterating a `HashMap` in the engine, reading the wall
//! clock in a baseline, or `unwrap()`ing in a superstep — the exact bug
//! classes that silently break that property. `ec-lint` is a self-contained
//! analyzer (the offline build has no `syn`/`dylint`) that enforces them:
//!
//! * [`rules::no_unordered_iteration`] — no `HashMap`/`HashSet` iteration
//!   in deterministic paths;
//! * [`rules::no_wall_clock`] — `std::time::{Instant, SystemTime}` only in
//!   the sanctioned clock module;
//! * [`rules::no_unseeded_rng`] — no `thread_rng`/`from_entropy` anywhere;
//! * [`rules::no_panic_hot_path`] — no `unwrap`/`expect`/`panic!` in the
//!   superstep hot paths;
//! * [`rules::wire_hygiene`] — wire types derive both serde directions and
//!   have round-trip tests.
//!
//! Scopes live in `lint.toml` ([`config::LintConfig`]); inline escapes are
//! `// ec-lint: allow(<rule>)` on or directly above the flagged line.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

use config::{LintConfig, RuleConfig};
use diag::Diagnostic;
use lexer::LexedFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories never worth descending into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "node_modules"];

/// Recursively collects `.rs` files under `root`, returned as
/// workspace-relative `/`-separated paths in sorted order.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs every configured rule over the workspace at `root`.
///
/// Returns unsuppressed diagnostics sorted by `(path, line, rule)`.
///
/// # Errors
/// An unknown rule name in the config, or an unreadable file.
pub fn run(root: &Path, config: &LintConfig) -> Result<Vec<Diagnostic>, String> {
    let files = collect_rust_files(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut cache: BTreeMap<String, LexedFile> = BTreeMap::new();
    let lexed = |rel: &str, cache: &mut BTreeMap<String, LexedFile>| -> Result<LexedFile, String> {
        if let Some(f) = cache.get(rel) {
            return Ok(f.clone());
        }
        let full: PathBuf = root.join(rel);
        let src = std::fs::read_to_string(&full).map_err(|e| format!("reading {rel}: {e}"))?;
        let f = lexer::lex(&src);
        cache.insert(rel.to_string(), f.clone());
        Ok(f)
    };

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for (rule_name, rc) in &config.rules {
        let scoped: Vec<&String> = files.iter().filter(|f| rc.applies_to(f)).collect();
        match rule_name.as_str() {
            "no-wall-clock"
            | "no-unseeded-rng"
            | "no-panic-hot-path"
            | "no-unordered-iteration" => {
                for rel in scoped {
                    let file = lexed(rel, &mut cache)?;
                    diagnostics.extend(run_file_rule(rule_name, rc, rel, &file));
                }
            }
            "wire-hygiene" => {
                let mut set = Vec::new();
                for rel in scoped {
                    set.push((rel.clone(), lexed(rel, &mut cache)?));
                }
                diagnostics.extend(rules::wire_hygiene(rc, &set));
            }
            other => return Err(format!("lint.toml: unknown rule [{other}]")),
        }
    }

    // Drop findings the source explicitly allows: a suppression comment
    // covers its own line and the line below it.
    diagnostics.retain(|d| {
        let Some(file) = cache.get(&d.path) else { return true };
        !file.suppressions.iter().any(|s| {
            (s.rule == d.rule || s.rule == "all") && (s.line == d.line || s.line + 1 == d.line)
        })
    });
    diagnostics.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(diagnostics)
}

fn run_file_rule(name: &str, rc: &RuleConfig, path: &str, file: &LexedFile) -> Vec<Diagnostic> {
    match name {
        "no-wall-clock" => rules::no_wall_clock(rc, path, file),
        "no-unseeded-rng" => rules::no_unseeded_rng(rc, path, file),
        "no-panic-hot-path" => rules::no_panic_hot_path(rc, path, file),
        "no-unordered-iteration" => rules::no_unordered_iteration(rc, path, file),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the whole PR: the workspace itself is
    /// lint-clean under the checked-in `lint.toml`.
    #[test]
    fn workspace_is_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml at repo root");
        let config = LintConfig::parse(&toml).expect("lint.toml parses");
        assert_eq!(config.rules.len(), 5, "all five rules configured");
        let diags = run(&root, &config).expect("lint run succeeds");
        assert!(
            diags.is_empty(),
            "workspace has lint violations:\n{}",
            diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn suppressions_silence_a_finding() {
        let dir = std::env::temp_dir().join(format!("ec-lint-suppr-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(
            dir.join("src/a.rs"),
            "// ec-lint: allow(no-wall-clock)\nuse std::time::Instant;\nuse std::time::SystemTime;\n",
        )
        .unwrap();
        let config =
            LintConfig::parse("[no-wall-clock]\nseverity = \"error\"\ninclude = [\"src\"]")
                .unwrap();
        let diags = run(&dir, &config).unwrap();
        // Line 2 is covered by the line-1 comment; line 3 is not.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
