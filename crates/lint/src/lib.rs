//! # `ec-lint` — workspace static analysis for determinism invariants
//!
//! The reproduction's claims rest on the simulated cluster being a
//! *measurement instrument*: two runs of one config must produce identical
//! traffic, losses, and reports. Nothing in rustc or clippy stops a
//! contributor from iterating a `HashMap` in the engine, reading the wall
//! clock in a baseline, or `unwrap()`ing in a superstep — the exact bug
//! classes that silently break that property. `ec-lint` is a self-contained
//! analyzer (the offline build has no `syn`/`dylint`) that enforces them.
//!
//! Token-pattern rules ([`rules`]):
//!
//! * [`rules::no_unordered_iteration`] — no `HashMap`/`HashSet` iteration
//!   in deterministic paths;
//! * [`rules::no_wall_clock`] — `std::time::{Instant, SystemTime}` only in
//!   the sanctioned clock module;
//! * [`rules::no_unseeded_rng`] — no `thread_rng`/`from_entropy` anywhere;
//! * [`rules::no_panic_hot_path`] — no `unwrap`/`expect`/`panic!` in the
//!   superstep hot paths;
//! * [`rules::wire_hygiene`] — wire types derive both serde directions and
//!   have round-trip tests.
//!
//! Semantic rules ([`sem`]), built on a recursive-descent parser
//! ([`parser`]) and a workspace symbol table ([`symbols`]):
//!
//! * [`sem::thread_scope_hygiene`] — scoped worker closures stay pure
//!   compute; shared replay-ordered state is touched only on the engine
//!   thread's ordered replay;
//! * [`sem::no_float_unordered_reduce`] — no float `sum`/`fold`/`reduce`
//!   chains rooted at unordered sources;
//! * [`sem::metric_catalog_sync`] — `metric_catalog!` ids and their record
//!   sites stay in sync, both directions;
//! * [`sem::wire_schema_lock`] — `Serialize` wire types match the
//!   checked-in `wire.lock` fingerprints;
//! * `unused-suppression` (in [`run`]) — every inline allow comment must
//!   still suppress something, and must name a real rule. These findings
//!   are reported after suppression filtering, so they cannot themselves
//!   be suppressed.
//!
//! Interprocedural rules, built on a workspace call graph ([`callgraph`])
//! with fixpoint effect inference ([`effects`]):
//!
//! * `no-panic-hot-path` with `entry_points` configured flags any
//!   panicking function reachable from a superstep/serve entry;
//! * [`sem::thread_scope_hygiene`] follows helper calls out of worker
//!   closures to sends/telemetry any number of hops away;
//! * [`sem::determinism_taint`] — serialization sinks must not
//!   transitively depend on unordered iteration, unseeded RNG, or the
//!   wall clock.
//!
//! Concurrency-soundness rules ([`conc`]), built on per-closure capture
//! and write sets ([`dataflow`]):
//!
//! * [`conc::disjoint_band_writes`] — pool-dispatched closures write only
//!   through band-local `&mut` slices, directly or via any call chain;
//! * [`conc::atomics_ordering_audit`] — every `Ordering::Relaxed` access
//!   and `unsafe` block carries a `// ec-lint: sound(<reason>)`
//!   justification, inventoried into the checked-in `unsafe.lock`
//!   (regenerate with `UPDATE_UNSAFE_LOCK=1`);
//! * [`conc::lock_then_wait_hygiene`] — `Condvar::wait` sits in a
//!   predicate-rechecking loop, and no second mutex is taken while a pool
//!   guard is held.
//!
//! Findings from these rules carry the offending call chain as a note.
//! Per-file analysis summaries can be cached ([`cache`], `--cache` on the
//! CLI) keyed by content hash; resolution and the fixpoint re-run from
//! summaries each time, so warm runs are byte-identical to cold ones.
//! Diagnostics export as SARIF 2.1.0 ([`sarif`], `--sarif <path>`).
//!
//! Scopes live in `lint.toml` ([`config::LintConfig`]); inline escapes are
//! `// ec-lint: allow(<rule>)` on or directly above the flagged line.

pub mod cache;
pub mod callgraph;
pub mod conc;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod effects;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod sem;
pub mod symbols;

use callgraph::Analysis;
use config::{LintConfig, RuleConfig};
use diag::Diagnostic;
use lexer::LexedFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use symbols::Workspace;

/// Every rule this binary implements, in the order they are documented.
pub const KNOWN_RULES: &[&str] = &[
    "no-wall-clock",
    "no-unseeded-rng",
    "no-panic-hot-path",
    "no-unordered-iteration",
    "wire-hygiene",
    "thread-scope-hygiene",
    "no-float-unordered-reduce",
    "metric-catalog-sync",
    "wire-schema-lock",
    "determinism-taint",
    "unused-suppression",
    "disjoint-band-writes",
    "atomics-ordering-audit",
    "lock-then-wait-hygiene",
];

/// Rules that need the parsed workspace symbol table.
const SEMANTIC_RULES: &[&str] =
    &["thread-scope-hygiene", "metric-catalog-sync", "wire-schema-lock", "determinism-taint"];

/// Directories never worth descending into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "node_modules"];

/// Recursively collects `.rs` files under `root`, returned as
/// workspace-relative `/`-separated paths in sorted order.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Options for [`run_with`] beyond the config file.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Directory for the incremental analysis cache; `None` runs cold.
    pub cache_dir: Option<PathBuf>,
}

/// Whether `rel` is part of the lint fixture corpus. Fixture bait must not
/// enter the *workspace* call graph — a fixture `fn` named like a real
/// helper would hijack unique-suffix resolution. (Linting the fixture tree
/// itself is unaffected: there the corpus files are `src/…`, not under a
/// `tests/fixtures` prefix.)
fn is_fixture_corpus(rel: &str) -> bool {
    rel.starts_with("tests/fixtures/") || rel.contains("/tests/fixtures/")
}

/// Runs every configured rule over the workspace at `root` with default
/// options (no cache). See [`run_with`].
///
/// # Errors
/// See [`run_with`].
pub fn run(root: &Path, config: &LintConfig) -> Result<Vec<Diagnostic>, String> {
    run_with(root, config, &RunOptions::default())
}

/// Runs every configured rule over the workspace at `root`.
///
/// Returns unsuppressed diagnostics sorted by `(path, line, rule)`.
///
/// # Errors
/// An unknown rule name in the config, an unreadable file, or (when a
/// semantic rule is configured) a file whose item structure cannot be
/// parsed.
pub fn run_with(
    root: &Path,
    config: &LintConfig,
    opts: &RunOptions,
) -> Result<Vec<Diagnostic>, String> {
    for name in config.rules.keys() {
        if !KNOWN_RULES.contains(&name.as_str()) {
            return Err(format!("lint.toml: unknown rule [{name}]"));
        }
    }
    let files = collect_rust_files(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut lexed: BTreeMap<String, LexedFile> = BTreeMap::new();
    let mut src_of: BTreeMap<String, String> = BTreeMap::new();
    for rel in &files {
        let src =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        lexed.insert(rel.clone(), lexer::lex(&src));
        src_of.insert(rel.clone(), src);
    }
    let needs_analysis = config.rules.contains_key("thread-scope-hygiene")
        || config.rules.contains_key("determinism-taint")
        || config.rules.contains_key("disjoint-band-writes")
        || config.rules.get("no-panic-hot-path").is_some_and(|rc| !rc.entry_points.is_empty());
    let needs_ws =
        needs_analysis || config.rules.keys().any(|r| SEMANTIC_RULES.contains(&r.as_str()));
    let ws: Option<Workspace> = if needs_ws { Some(Workspace::build(root, &lexed)?) } else { None };
    let analysis: Option<Analysis> = if needs_analysis {
        let ws = ws.as_ref().expect("analysis implies workspace");
        let cache = opts.cache_dir.as_deref().and_then(cache::Cache::open);
        let mut summaries = Vec::new();
        for rel in &files {
            if is_fixture_corpus(rel) {
                continue;
            }
            let module = ws.module_of(rel).unwrap_or("").to_string();
            let key = cache::summary_key(rel, &src_of[rel], &module);
            if let Some(hit) = cache.as_ref().and_then(|c| c.load(key)) {
                summaries.push(hit);
                continue;
            }
            let summary = callgraph::summarize_file(rel, &module, &lexed[rel], &ws.parsed[rel]);
            if let Some(c) = &cache {
                c.store(key, &summary);
            }
            summaries.push(summary);
        }
        Some(Analysis::build(ws, &summaries))
    } else {
        None
    };

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for (rule_name, rc) in &config.rules {
        let scoped: Vec<String> = files.iter().filter(|f| rc.applies_to(f)).cloned().collect();
        match rule_name.as_str() {
            "no-wall-clock"
            | "no-unseeded-rng"
            | "no-unordered-iteration"
            | "no-float-unordered-reduce" => {
                for rel in &scoped {
                    diagnostics.extend(run_file_rule(rule_name, rc, rel, &lexed[rel]));
                }
            }
            "no-panic-hot-path" => {
                // The token scan over the `include` scope always runs; with
                // `entry_points` configured, reachability findings join it.
                // Where both flag one line, the reachability finding wins —
                // it carries the call chain.
                let mut merged: BTreeMap<(String, usize), Diagnostic> = BTreeMap::new();
                if !rc.entry_points.is_empty() {
                    let analysis = analysis.as_ref().expect("entry points imply analysis");
                    for d in sem::no_panic_reachable(rc, analysis) {
                        if d.path == "lint.toml" {
                            diagnostics.push(d); // dead-pattern errors never merge
                        } else {
                            merged.entry((d.path.clone(), d.line)).or_insert(d);
                        }
                    }
                }
                for rel in &scoped {
                    for d in run_file_rule(rule_name, rc, rel, &lexed[rel]) {
                        merged.entry((d.path.clone(), d.line)).or_insert(d);
                    }
                }
                diagnostics.extend(merged.into_values());
            }
            "thread-scope-hygiene" => {
                let ws = ws.as_ref().expect("semantic rule implies workspace");
                let analysis = analysis.as_ref().expect("scope hygiene implies analysis");
                for rel in &scoped {
                    diagnostics.extend(sem::thread_scope_hygiene(
                        rc,
                        rel,
                        &lexed[rel],
                        ws,
                        analysis,
                    ));
                }
            }
            "wire-hygiene" => {
                let set: Vec<(String, LexedFile)> =
                    scoped.iter().map(|rel| (rel.clone(), lexed[rel].clone())).collect();
                diagnostics.extend(rules::wire_hygiene(rc, &set));
            }
            "metric-catalog-sync" => {
                let ws = ws.as_ref().expect("semantic rule implies workspace");
                diagnostics.extend(sem::metric_catalog_sync(rc, &scoped, &lexed, ws));
            }
            "wire-schema-lock" => {
                let ws = ws.as_ref().expect("semantic rule implies workspace");
                diagnostics.extend(sem::wire_schema_lock(rc, root, &scoped, ws));
            }
            "determinism-taint" => {
                let analysis = analysis.as_ref().expect("taint rule implies analysis");
                diagnostics.extend(sem::determinism_taint(rc, analysis));
            }
            "disjoint-band-writes" => {
                let analysis = analysis.as_ref().expect("band-writes rule implies analysis");
                diagnostics.extend(conc::disjoint_band_writes(rc, &scoped, &lexed, analysis));
            }
            "atomics-ordering-audit" => {
                diagnostics.extend(conc::atomics_ordering_audit(rc, root, &scoped, &lexed));
            }
            "lock-then-wait-hygiene" => {
                for rel in &scoped {
                    diagnostics.extend(conc::lock_then_wait_hygiene(rc, rel, &lexed[rel]));
                }
            }
            "unused-suppression" => {} // runs after suppression matching below
            other => return Err(format!("lint.toml: unknown rule [{other}]")),
        }
    }

    // Drop findings the source explicitly allows: a suppression comment
    // covers its own line and the line below it. Record which suppressions
    // actually earned their keep — `unused-suppression` audits the rest.
    let mut used: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in diagnostics {
        let mut suppressed = false;
        if let Some(file) = lexed.get(&d.path) {
            for s in &file.suppressions {
                if (s.rule == d.rule || s.rule == "all")
                    && (s.line == d.line || s.line + 1 == d.line)
                {
                    used.insert((d.path.clone(), s.line, s.rule.clone()));
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    let mut diagnostics = kept;

    if let Some(rc) = config.rules.get("unused-suppression") {
        for rel in files.iter().filter(|f| rc.applies_to(f)) {
            for s in &lexed[rel].suppressions {
                if s.rule != "all" && !KNOWN_RULES.contains(&s.rule.as_str()) {
                    diagnostics.push(rules::diag(
                        rc,
                        "unused-suppression",
                        rel,
                        s.line,
                        format!("`ec-lint: allow({})` names a rule that does not exist", s.rule),
                    ));
                } else if !used.contains(&(rel.clone(), s.line, s.rule.clone())) {
                    diagnostics.push(rules::diag(
                        rc,
                        "unused-suppression",
                        rel,
                        s.line,
                        format!(
                            "`ec-lint: allow({})` matches no finding on this or the next \
                             line; remove the stale suppression",
                            s.rule
                        ),
                    ));
                }
            }
        }
    }

    diagnostics.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(diagnostics)
}

fn run_file_rule(name: &str, rc: &RuleConfig, path: &str, file: &LexedFile) -> Vec<Diagnostic> {
    match name {
        "no-wall-clock" => rules::no_wall_clock(rc, path, file),
        "no-unseeded-rng" => rules::no_unseeded_rng(rc, path, file),
        "no-panic-hot-path" => rules::no_panic_hot_path(rc, path, file),
        "no-unordered-iteration" => rules::no_unordered_iteration(rc, path, file),
        "no-float-unordered-reduce" => sem::no_float_unordered_reduce(rc, path, file),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the whole PR: the workspace itself is
    /// lint-clean under the checked-in `lint.toml`.
    #[test]
    fn workspace_is_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml at repo root");
        let config = LintConfig::parse(&toml).expect("lint.toml parses");
        assert_eq!(config.rules.len(), 14, "all fourteen rules configured");
        let diags = run(&root, &config).expect("lint run succeeds");
        assert!(
            diags.is_empty(),
            "workspace has lint violations:\n{}",
            diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn suppressions_silence_a_finding() {
        let dir = std::env::temp_dir().join(format!("ec-lint-suppr-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(
            dir.join("src/a.rs"),
            "// ec-lint: allow(no-wall-clock)\nuse std::time::Instant;\nuse std::time::SystemTime;\n",
        )
        .unwrap();
        let config =
            LintConfig::parse("[no-wall-clock]\nseverity = \"error\"\ninclude = [\"src\"]")
                .unwrap();
        let diags = run(&dir, &config).unwrap();
        // Line 2 is covered by the line-1 comment; line 3 is not.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unused_suppressions_are_flagged_and_used_ones_are_not() {
        let dir = std::env::temp_dir().join(format!("ec-lint-stale-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(
            dir.join("src/a.rs"),
            "// ec-lint: allow(no-wall-clock)\n\
             use std::time::Instant;\n\
             // ec-lint: allow(no-wall-clock)\n\
             fn nothing_to_allow() {}\n\
             // ec-lint: allow(no-such-rule)\n\
             fn bad_name() {}\n",
        )
        .unwrap();
        let config = LintConfig::parse(
            "[no-wall-clock]\nseverity = \"error\"\ninclude = [\"src\"]\n\
             [unused-suppression]\nseverity = \"error\"\ninclude = [\"src\"]",
        )
        .unwrap();
        let diags = run(&dir, &config).unwrap();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("matches no finding"));
        assert_eq!(diags[1].line, 5);
        assert!(diags[1].message.contains("does not exist"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
