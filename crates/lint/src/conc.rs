//! Concurrency-soundness rules: the v4 layer that watches the
//! [`WorkerPool`](../../tensor/src/pool.rs) era of the codebase.
//!
//! Three rule families, all built on [`crate::dataflow`]'s capture/write
//! sets and the PR 7 call graph:
//!
//! * `disjoint-band-writes` — a closure handed to the pool
//!   (`WorkerPool::run` / `exec::run_workers` / `parallel::run_bands`)
//!   may only write through its own parameters, its locals, and
//!   band-local `&mut` slices produced by `split_at_mut` and friends.
//!   A write to any other captured binding is a data race the moment two
//!   lanes run the closure family concurrently — and a call chain that
//!   *reaches* a shared-state writer is just as racy, so resolved calls
//!   are checked against a workspace-wide writer map with a witness
//!   chain in the note.
//! * `atomics-ordering-audit` — every `Ordering::Relaxed` access and
//!   every `unsafe { … }` block must carry an adjacent
//!   `// ec-lint: sound(<reason>)` justification, and every justified
//!   site is fingerprinted into a checked-in `unsafe.lock` so the
//!   inventory of deliberately-weak synchronization is reviewable and
//!   drift-proof, exactly like `wire.lock` guards the wire schema.
//! * `lock-then-wait-hygiene` — `Condvar::wait` must sit inside a
//!   predicate-rechecking loop (spurious wakeups are allowed by the
//!   platform), and no second `Mutex` may be acquired while a pool guard
//!   is held (the static half of deadlock freedom for the two-lock
//!   `JobQueue`/`Latch` design).

use crate::callgraph::{chain_note, Analysis};
use crate::dataflow;
use crate::diag::Diagnostic;
use crate::lexer::{LexedFile, Tok, TokKind};
use crate::rules::{diag, ident_at, is_punct, matching_brace, matching_delim, punct_at, test_mask};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Free/qualified dispatch functions whose closure arguments run on pool
/// lanes. `WorkerPool::run` itself takes an already-built `Vec<Task>`, so
/// the closures are caught at their `Box::new(move || …)` construction
/// sites instead (see [`task_box_sites`]).
const DISPATCH_FNS: &[&str] = &["run_workers", "run_bands"];

/// `disjoint-band-writes`: finds every closure that will execute on a pool
/// lane and checks its write set against the capture lattice. Returns one
/// error per offending write (direct) or per resolved call that reaches a
/// shared-state writer (with the witness chain as the note).
pub fn disjoint_band_writes(
    rc: &crate::config::RuleConfig,
    scoped: &[String],
    lexed: &BTreeMap<String, LexedFile>,
    analysis: &Analysis,
) -> Vec<Diagnostic> {
    let writers = shared_writers(lexed, analysis);
    let mut out = Vec::new();
    for rel in scoped {
        let Some(file) = lexed.get(rel) else { continue };
        let toks = &file.tokens;
        let mask = test_mask(toks);
        let bands = dataflow::band_bindings(toks, (0, toks.len()));
        for (open, until) in dispatch_arg_ranges(toks, &mask) {
            let Some((params, body)) = dataflow::closure_in(toks, open, until) else { continue };
            check_closure(rc, rel, toks, params, body, &bands, &writers, analysis, &mut out);
        }
    }
    // Nested dispatch expressions can scan overlapping ranges; keep one
    // diagnostic per (path, line, message).
    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    out
}

/// Workspace-wide map of functions that write shared state: any non-test
/// function with a write whose root is neither a parameter, a local, nor a
/// band binding. The value is a human-readable witness of the first such
/// write, used in interprocedural findings.
fn shared_writers(
    lexed: &BTreeMap<String, LexedFile>,
    analysis: &Analysis,
) -> BTreeMap<String, String> {
    let mut writers = BTreeMap::new();
    for (fq, node) in &analysis.nodes {
        let (Some(body), Some(file), false) = (node.body, lexed.get(&node.path), node.is_test)
        else {
            continue;
        };
        let toks = &file.tokens;
        let mut allowed: BTreeSet<String> = dataflow::local_names(toks, body);
        allowed.extend(dataflow::band_bindings(toks, body));
        if let Some(params) = dataflow::fn_param_range(toks, node.line, body.0) {
            allowed.extend(dataflow::param_names(toks, params));
        }
        for w in dataflow::write_sites(toks, body) {
            if !allowed.contains(&w.root) {
                writers.insert(fq.clone(), format!("{} at {}:{}", w.what, node.path, w.line));
                break;
            }
        }
    }
    writers
}

/// Token ranges `(start, until)` in which a pool-bound closure literal can
/// appear: the argument lists of [`DISPATCH_FNS`] calls plus
/// `Box::new(…)` task-construction sites.
fn dispatch_arg_ranges(toks: &[Tok], mask: &[bool]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if DISPATCH_FNS.contains(&name) && is_punct(toks, i + 1, "(") {
            out.push((i + 2, matching_delim(toks, i + 1, "(", ")")));
        }
        if name == "Box"
            && is_punct(toks, i + 1, ":")
            && is_punct(toks, i + 2, ":")
            && ident_at(toks, i + 3) == Some("new")
            && is_punct(toks, i + 4, "(")
            && boxes_a_task(toks, i)
        {
            out.push((i + 5, matching_delim(toks, i + 4, "(", ")")));
        }
    }
    out
}

/// Whether the `Box` at `i` builds a pool task: either pushed straight
/// onto a task vector (`tasks.push(Box::new(…))`) or bound by a statement
/// that names the `Task` type (`let job: Task = Box::new(…)`).
fn boxes_a_task(toks: &[Tok], i: usize) -> bool {
    if i >= 2 && ident_at(toks, i - 2) == Some("push") && is_punct(toks, i - 1, "(") {
        return true;
    }
    let mut j = i;
    while j > 0 && !matches!(punct_at(toks, j - 1), Some(";" | "{" | "}")) {
        j -= 1;
        if ident_at(toks, j) == Some("Task") {
            return true;
        }
    }
    false
}

/// Checks one pool-bound closure: direct captured writes, then resolved
/// calls that reach a shared-state writer.
#[allow(clippy::too_many_arguments)]
fn check_closure(
    rc: &crate::config::RuleConfig,
    path: &str,
    toks: &[Tok],
    params: (usize, usize),
    body: (usize, usize),
    bands: &BTreeSet<String>,
    writers: &BTreeMap<String, String>,
    analysis: &Analysis,
    out: &mut Vec<Diagnostic>,
) {
    let mut allowed = dataflow::param_names(toks, params);
    allowed.extend(dataflow::local_names(toks, body));
    allowed.extend(dataflow::band_bindings(toks, body));
    allowed.extend(bands.iter().cloned());
    for w in dataflow::write_sites(toks, body) {
        if allowed.contains(&w.root) {
            continue;
        }
        out.push(diag(
            rc,
            "disjoint-band-writes",
            path,
            w.line,
            format!(
                "pool-dispatched closure writes captured shared binding `{}` ({}); worker \
                 closures may only write through band-local `&mut` slices — split the output \
                 with `split_at_mut` and move the band in, or return the value and merge it \
                 after the join",
                w.root, w.what
            ),
        ));
    }
    for (caller_fq, sites) in &analysis.edges {
        let Some(node) = analysis.nodes.get(caller_fq) else { continue };
        if node.path != path {
            continue;
        }
        for site in sites {
            if site.tok < body.0 || site.tok >= body.1 {
                continue;
            }
            let reached = analysis.reachable_from(std::slice::from_ref(&site.callee));
            let Some(writer_fq) = reached.iter().find(|fq| writers.contains_key(*fq)) else {
                continue;
            };
            let called = ident_at(toks, site.tok).unwrap_or("<call>");
            let mut d = diag(
                rc,
                "disjoint-band-writes",
                path,
                site.line,
                format!(
                    "`{called}()` inside a pool-dispatched closure reaches `{}`, which writes \
                     shared state ({}); two lanes running this closure race on that write",
                    writer_fq.rsplit("::").next().unwrap_or(writer_fq),
                    writers[writer_fq]
                ),
            );
            if let Some(chain) = analysis.path_between(&site.callee, writer_fq) {
                d.note = Some(chain_note(&chain));
            }
            out.push(d);
        }
    }
}

/// One auditable site: a `Relaxed` access or an `unsafe` block.
struct AuditSite {
    /// `"relaxed"` or `"unsafe"`.
    kind: &'static str,
    /// 1-based source line.
    line: usize,
    /// Rendering of the site's line of tokens, hashed into the fingerprint
    /// so editing the site invalidates its lock entry.
    text: String,
}

/// `atomics-ordering-audit`: every `Ordering::Relaxed` access and every
/// `unsafe { … }` block in scope needs an adjacent
/// `// ec-lint: sound(<reason>)` justification; justified sites are
/// fingerprinted into the lockfile (default `unsafe.lock`), regenerated
/// deliberately with `UPDATE_UNSAFE_LOCK=1`. Markers justifying nothing
/// are themselves errors — a stale `sound()` is worse than none.
pub fn atomics_ordering_audit(
    rc: &crate::config::RuleConfig,
    root: &Path,
    scoped: &[String],
    lexed: &BTreeMap<String, LexedFile>,
) -> Vec<Diagnostic> {
    let lock_rel = rc.lock.as_deref().unwrap_or("unsafe.lock");
    let mut out = Vec::new();
    // `path:kind#ordinal` → (fingerprint-with-reason, path, line).
    let mut current: BTreeMap<String, (String, String, usize)> = BTreeMap::new();
    for rel in scoped {
        let Some(file) = lexed.get(rel) else { continue };
        let sites = audit_sites(&file.tokens);
        let mut matched_markers: BTreeSet<usize> = BTreeSet::new();
        let mut ordinals: BTreeMap<&'static str, usize> = BTreeMap::new();
        for site in &sites {
            // A marker covers its own line and the line below it, the same
            // contract `allow()` suppressions follow.
            let marker =
                file.sound_markers.iter().find(|m| m.line == site.line || m.line + 1 == site.line);
            let Some(marker) = marker else {
                let what = match site.kind {
                    "relaxed" => "`Ordering::Relaxed` access",
                    _ => "`unsafe` block",
                };
                out.push(diag(
                    rc,
                    "atomics-ordering-audit",
                    rel,
                    site.line,
                    format!(
                        "{what} without a `// ec-lint: sound(<reason>)` justification; state \
                         why the weak ordering (or the unsafe invariant) is correct, on this \
                         line or the one above"
                    ),
                ));
                continue;
            };
            matched_markers.insert(marker.line);
            let ord = ordinals.entry(site.kind).or_insert(0);
            let key = format!("{rel}:{}#{}", site.kind, *ord);
            *ord += 1;
            let h = crate::cache::fnv1a(
                format!("{}|{}|{}", site.kind, site.text, marker.reason).as_bytes(),
            );
            current.insert(key, (format!("{h:016x} {}", marker.reason), rel.clone(), site.line));
        }
        for m in &file.sound_markers {
            if !matched_markers.contains(&m.line) {
                out.push(diag(
                    rc,
                    "atomics-ordering-audit",
                    rel,
                    m.line,
                    format!(
                        "`ec-lint: sound({})` justifies no `Ordering::Relaxed` access or \
                         `unsafe` block on this or the next line; remove the stale marker",
                        m.reason
                    ),
                ));
            }
        }
    }

    let lock_path = root.join(lock_rel);
    if std::env::var("UPDATE_UNSAFE_LOCK").as_deref() == Ok("1") {
        let mut text = String::from(
            "# ec-lint atomics-ordering-audit: fingerprints of every justified Relaxed\n\
             # access and unsafe block. A mismatch means a weak-ordering site changed;\n\
             # re-review it, then regen with UPDATE_UNSAFE_LOCK=1 cargo run -q -p ec-lint -- --check\n",
        );
        for (key, (fp, _, _)) in &current {
            text.push_str(&format!("{key} {fp}\n"));
        }
        if let Err(e) = std::fs::write(&lock_path, text) {
            return vec![diag(
                rc,
                "atomics-ordering-audit",
                lock_rel,
                1,
                format!("failed to write {lock_rel}: {e}"),
            )];
        }
        return Vec::new();
    }

    let Ok(lock_text) = std::fs::read_to_string(&lock_path) else {
        // With no justified sites there is nothing to inventory; the
        // lockfile only becomes mandatory once a site earns an entry.
        if !current.is_empty() {
            out.push(diag(
                rc,
                "atomics-ordering-audit",
                lock_rel,
                1,
                format!(
                    "{lock_rel} is missing; generate it with `UPDATE_UNSAFE_LOCK=1 cargo run \
                     -q -p ec-lint -- --check` and commit it"
                ),
            ));
        }
        return out;
    };
    let mut locked: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (idx, line) in lock_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, fp)) = line.split_once(' ') {
            locked.insert(key.to_string(), (fp.to_string(), idx + 1));
        }
    }
    for (key, (fp, rel, line)) in &current {
        match locked.get(key) {
            None => out.push(diag(
                rc,
                "atomics-ordering-audit",
                rel,
                *line,
                format!(
                    "justified site `{key}` has no {lock_rel} entry; inventory the new \
                     weak-ordering site with UPDATE_UNSAFE_LOCK=1"
                ),
            )),
            Some((locked_fp, _)) if locked_fp != fp => out.push(diag(
                rc,
                "atomics-ordering-audit",
                rel,
                *line,
                format!(
                    "audited site `{key}` drifted from {lock_rel}:\n  locked:  {locked_fp}\n  \
                     current: {fp}\n  the code or its sound() justification changed; \
                     re-review the ordering argument, then regen with UPDATE_UNSAFE_LOCK=1"
                ),
            )),
            Some(_) => {}
        }
    }
    for (key, (_, lock_line)) in &locked {
        if !current.contains_key(key) {
            out.push(diag(
                rc,
                "atomics-ordering-audit",
                lock_rel,
                *lock_line,
                format!(
                    "{lock_rel} entry `{key}` no longer matches any justified site in scope; \
                     if the site was removed on purpose, regen with UPDATE_UNSAFE_LOCK=1"
                ),
            ));
        }
    }
    out
}

/// Collects every `Ordering::Relaxed` access and `unsafe {` block outside
/// `#[cfg(test)]` regions, in token order.
fn audit_sites(toks: &[Tok]) -> Vec<AuditSite> {
    let mask = test_mask(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask.get(i).copied().unwrap_or(false) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let kind = match toks[i].text.as_str() {
            "Relaxed"
                if i >= 3
                    && is_punct(toks, i - 1, ":")
                    && is_punct(toks, i - 2, ":")
                    && ident_at(toks, i - 3) == Some("Ordering") =>
            {
                "relaxed"
            }
            "unsafe" if is_punct(toks, i + 1, "{") => "unsafe",
            _ => continue,
        };
        let line = toks[i].line;
        let text: String = toks
            .iter()
            .filter(|t| t.line == line)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        out.push(AuditSite { kind, line, text });
    }
    out
}

/// `lock-then-wait-hygiene`: two token-local checks over the pool module.
/// Every `.wait(` must sit inside a `loop`/`while`/`for` body (the
/// predicate recheck that makes spurious wakeups harmless), and while a
/// `lock(…)` guard binding is live (from its `let` to `drop(guard)` or
/// block end) no second `lock(` may run — the static lock-order discipline
/// that keeps the `JobQueue`/`Latch` pair deadlock-free.
pub fn lock_then_wait_hygiene(
    rc: &crate::config::RuleConfig,
    path: &str,
    file: &LexedFile,
) -> Vec<Diagnostic> {
    let toks = &file.tokens;
    let mask = test_mask(toks);
    let loops = loop_bodies(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        // `Condvar::wait` always takes the guard, so a zero-argument
        // `.wait()` (e.g. `Latch::wait`, which loops internally) is not a
        // condvar site.
        if ident_at(toks, i) == Some("wait")
            && is_punct(toks, i + 1, "(")
            && !is_punct(toks, i + 2, ")")
            && i >= 1
            && is_punct(toks, i - 1, ".")
            && !loops.iter().any(|&(s, e)| i > s && i < e)
        {
            out.push(diag(
                rc,
                "lock-then-wait-hygiene",
                path,
                toks[i].line,
                "`Condvar::wait` outside a predicate-rechecking loop; spurious wakeups are \
                 legal, so the wait must be `while !predicate { state = cv.wait(state)… }`"
                    .to_string(),
            ));
        }
    }
    for (guard, decl_end, region_end) in guard_regions(toks) {
        for j in decl_end..region_end {
            if mask.get(j).copied().unwrap_or(false) {
                continue;
            }
            if ident_at(toks, j) == Some("lock") && is_punct(toks, j + 1, "(") {
                out.push(diag(
                    rc,
                    "lock-then-wait-hygiene",
                    path,
                    toks[j].line,
                    format!(
                        "second `lock()` acquired while guard `{guard}` is still held; \
                         drop the first guard before taking another mutex (lock-order \
                         inversion deadlocks under contention)"
                    ),
                ));
            }
        }
    }
    out
}

/// Token ranges of `loop`/`while`/`for` body interiors (brace-matched; the
/// opening `{` is found at zero paren/bracket depth so closure args and
/// struct literals in the header don't fool the scan).
fn loop_bodies(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !matches!(ident_at(toks, i), Some("loop" | "while" | "for")) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match punct_at(toks, j) {
                Some("(" | "[") => depth += 1,
                Some(")" | "]") => depth -= 1,
                Some("{") if depth == 0 => break,
                Some(";") if depth == 0 => {
                    j = toks.len(); // `loop` used as an ident-ish fragment; bail
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if j < toks.len() {
            out.push((j, matching_brace(toks, j)));
        }
    }
    out
}

/// Live regions of `lock(…)` guard bindings: for each
/// `let [mut] <g> = … lock(…) …;` statement, yields
/// `(name, stmt_end, region_end)` where the region closes at `drop(g)` or
/// at the end of the enclosing block, whichever comes first.
fn guard_regions(toks: &[Tok]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("let") {
            continue;
        }
        let mut k = i + 1;
        if ident_at(toks, k) == Some("mut") {
            k += 1;
        }
        let Some(name) = ident_at(toks, k) else { continue };
        if !is_punct(toks, k + 1, "=") || is_punct(toks, k + 2, "=") {
            continue;
        }
        // Statement end: `;` at zero delimiter depth.
        let mut depth = 0i32;
        let mut j = k + 2;
        let mut takes_lock = false;
        while j < toks.len() {
            match punct_at(toks, j) {
                Some("(" | "[" | "{") => depth += 1,
                Some(")" | "]" | "}") => depth -= 1,
                Some(";") if depth == 0 => break,
                _ => {}
            }
            if ident_at(toks, j) == Some("lock") && is_punct(toks, j + 1, "(") {
                takes_lock = true;
            }
            j += 1;
        }
        if !takes_lock || j >= toks.len() {
            continue;
        }
        let stmt_end = j + 1;
        // Region end: `drop(name)` or the `}` closing the enclosing block.
        let mut end = toks.len();
        let mut d = 0i32;
        for m in stmt_end..toks.len() {
            match punct_at(toks, m) {
                Some("{") => d += 1,
                Some("}") => {
                    d -= 1;
                    if d < 0 {
                        end = m;
                        break;
                    }
                }
                _ => {}
            }
            if ident_at(toks, m) == Some("drop")
                && is_punct(toks, m + 1, "(")
                && ident_at(toks, m + 2) == Some(name)
                && is_punct(toks, m + 3, ")")
            {
                end = m;
                break;
            }
        }
        out.push((name.to_string(), stmt_end, end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleConfig;
    use crate::diag::Severity;
    use crate::lexer::lex;

    fn rc() -> RuleConfig {
        RuleConfig {
            severity: Severity::Error,
            include: vec![String::new()],
            exclude: Vec::new(),
            lock: None,
            entry_points: Vec::new(),
            sinks: Vec::new(),
        }
    }

    #[test]
    fn wait_outside_a_loop_is_flagged_and_inside_is_not() {
        let bad = lex("fn f(cv: &Condvar, g: G) { let g = cv.wait(g).unwrap(); }");
        let out = lock_then_wait_hygiene(&rc(), "src/a.rs", &bad);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("predicate-rechecking"));

        let ok = lex(
            "fn f(cv: &Condvar, mut g: G) { while g.pending > 0 { g = cv.wait(g).unwrap(); } }",
        );
        assert!(lock_then_wait_hygiene(&rc(), "src/a.rs", &ok).is_empty());
    }

    #[test]
    fn second_lock_under_a_live_guard_is_flagged() {
        let bad = lex("fn f(&self) { let mut state = lock(&self.state); state.n += 1; \
             let other = lock(&self.other); }");
        let out = lock_then_wait_hygiene(&rc(), "src/a.rs", &bad);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("lock-order"));

        let ok =
            lex("fn f(&self) { let mut state = lock(&self.state); state.n += 1; drop(state); \
             let other = lock(&self.other); }");
        assert!(lock_then_wait_hygiene(&rc(), "src/a.rs", &ok).is_empty(), "drop ends the region");
    }

    #[test]
    fn audit_sites_find_relaxed_and_unsafe_outside_tests() {
        let f = lex("fn f() { let t = N.fetch_add(1, Ordering::Relaxed); unsafe { go(t) } }\n\
             #[cfg(test)]\nmod tests { fn g() { M.load(Ordering::Relaxed); } }");
        let sites = audit_sites(&f.tokens);
        assert_eq!(sites.len(), 2, "test-mod site excluded");
        assert_eq!(sites[0].kind, "relaxed");
        assert_eq!(sites[1].kind, "unsafe");
    }

    #[test]
    fn unjustified_sites_and_stale_markers_are_flagged() {
        let dir = std::env::temp_dir().join(format!("ec-conc-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = "// ec-lint: sound(covers the line below)\n\
                   static N: AtomicU64 = AtomicU64::new(0);\n\
                   fn f() { N.store(1, Ordering::Relaxed); }\n";
        let mut lexed = BTreeMap::new();
        lexed.insert("src/a.rs".to_string(), lex(src));
        let out = atomics_ordering_audit(&rc(), &dir, &["src/a.rs".to_string()], &lexed);
        // Line 3's Relaxed is unjustified (marker covers lines 1-2 only) and
        // the marker itself is stale — two findings, no lockfile complaint
        // needed because nothing was justified.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|d| d.line == 3 && d.message.contains("without a")));
        assert!(out.iter().any(|d| d.line == 1 && d.message.contains("stale")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn justified_sites_roundtrip_through_the_lockfile() {
        let dir = std::env::temp_dir().join(format!("ec-conc-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = "fn f() {\n\
                   // ec-lint: sound(token ids only need uniqueness)\n\
                   let t = N.fetch_add(1, Ordering::Relaxed);\n\
                   }\n";
        let mut lexed = BTreeMap::new();
        lexed.insert("src/a.rs".to_string(), lex(src));
        let scoped = ["src/a.rs".to_string()];

        // Missing lockfile → one finding naming the lock.
        let out = atomics_ordering_audit(&rc(), &dir, &scoped, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("unsafe.lock is missing"));

        // Write a matching lock by reproducing the fingerprint scheme.
        let line3: String = lex(src)
            .tokens
            .iter()
            .filter(|t| t.line == 3)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let h = crate::cache::fnv1a(
            format!("relaxed|{line3}|token ids only need uniqueness").as_bytes(),
        );
        std::fs::write(
            dir.join("unsafe.lock"),
            format!("src/a.rs:relaxed#0 {h:016x} token ids only need uniqueness\n"),
        )
        .unwrap();
        assert!(atomics_ordering_audit(&rc(), &dir, &scoped, &lexed).is_empty());

        // Corrupt the fingerprint → drift finding at the site.
        std::fs::write(
            dir.join("unsafe.lock"),
            "src/a.rs:relaxed#0 0000000000000000 token ids only need uniqueness\n",
        )
        .unwrap();
        let out = atomics_ordering_audit(&rc(), &dir, &scoped, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("drifted"), "{}", out[0].message);
        assert_eq!(out[0].line, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
