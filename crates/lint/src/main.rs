//! `ec-lint` CLI.
//!
//! ```sh
//! cargo run -p ec-lint -- --check            # human-readable, exit 1 on errors
//! cargo run -p ec-lint -- --check --json     # machine-readable diagnostics
//! cargo run -p ec-lint -- --check --sarif out.sarif   # SARIF 2.1.0 log
//! cargo run -p ec-lint -- --check --cache    # warm the incremental cache
//! ```
//!
//! Flags: `--check` (required mode), `--json`, `--sarif <path>` (write a
//! SARIF 2.1.0 log alongside the normal output), `--cache` (per-file
//! summary cache under `<root>/target/ec-lint-cache`), `--cache-dir <dir>`
//! (cache in an explicit directory), `--root <dir>` (default `.`),
//! `--config <file>` (default `<root>/lint.toml`).
//!
//! With `UPDATE_WIRE_LOCK=1` in the environment, the `wire-schema-lock`
//! rule rewrites its lockfile from the current sources instead of
//! checking against it; commit the regenerated lock with the schema
//! change that motivated it. `UPDATE_UNSAFE_LOCK=1` does the same for
//! `atomics-ordering-audit`'s inventory of justified `Relaxed`/`unsafe`
//! sites (`unsafe.lock`).

use ec_lint::config::LintConfig;
use ec_lint::diag::Severity;
use ec_lint::RunOptions;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut json = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut use_cache = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--sarif" => match it.next() {
                Some(v) => sarif_path = Some(PathBuf::from(v)),
                None => return usage("--sarif needs a value"),
            },
            "--cache" => use_cache = true,
            "--cache-dir" => match it.next() {
                Some(v) => cache_dir = Some(PathBuf::from(v)),
                None => return usage("--cache-dir needs a value"),
            },
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match it.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if !check {
        return usage("pass --check to run the analysis");
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let toml = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ec-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match LintConfig::parse(&toml) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = RunOptions {
        cache_dir: cache_dir
            .or_else(|| use_cache.then(|| root.join("target").join("ec-lint-cache"))),
    };
    let diags = match ec_lint::run_with(&root, &config, &opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ec-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &sarif_path {
        let log = ec_lint::sarif::to_sarif(&diags);
        if let Err(e) = std::fs::write(path, format!("{log}\n")) {
            eprintln!("ec-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    if json {
        let items: Vec<serde_json::Value> = diags.iter().map(|d| d.to_json()).collect();
        println!(
            "{}",
            serde_json::json!({
                "diagnostics": items,
                "errors": errors,
                "warnings": diags.len() - errors,
            })
        );
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("ec-lint: clean ({} rules)", config.rules.len());
        } else {
            println!("ec-lint: {} finding(s), {errors} error(s)", diags.len());
        }
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ec-lint: {err}");
    }
    eprintln!(
        "usage: ec-lint --check [--json] [--sarif <path>] [--cache | --cache-dir <dir>]\n\
         \x20               [--root <dir>] [--config <lint.toml>]\n\
         Runs the workspace determinism lints; exits non-zero on errors.\n\
         --sarif writes a SARIF 2.1.0 log for code-scanning upload.\n\
         --cache keeps per-file analysis summaries under target/ec-lint-cache.\n\
         UPDATE_WIRE_LOCK=1 regenerates the wire-schema lockfile in place.\n\
         UPDATE_UNSAFE_LOCK=1 regenerates the justified Relaxed/unsafe inventory (unsafe.lock)."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
