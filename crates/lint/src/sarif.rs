//! SARIF 2.1.0 export: the interchange format GitHub code scanning (and
//! most editor SARIF viewers) ingest.
//!
//! One run, one driver (`ec-lint`), every known rule listed in the
//! driver's `rules` array so `ruleIndex` back-references resolve. Paths
//! are emitted as workspace-relative URIs under `%SRCROOT%`, which is how
//! upload-sarif maps them onto the repository without knowing the
//! checkout directory. Output is deterministic: diagnostics arrive
//! already sorted from [`crate::run_with`], and the JSON value preserves
//! literal key order, so the same findings always serialize to the same
//! bytes (the cold/warm cache test in `tests/golden.rs` relies on this).

use crate::diag::{Diagnostic, Severity};
use serde_json::{json, Value};

/// One-line rule summaries for the SARIF rule metadata. Kept here (not in
/// the rule modules) because this is presentation text, not analysis.
fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "no-wall-clock" => "Wall-clock reads outside the sanctioned timer make runs diverge",
        "no-unseeded-rng" => "Random draws must flow from the run seed, never OS entropy",
        "no-panic-hot-path" => {
            "No panicking call on a superstep/serve path, directly or via the call graph"
        }
        "no-unordered-iteration" => "Hash-container iteration order is process-random",
        "wire-hygiene" => "Serialize wire types must round-trip and derive Deserialize",
        "thread-scope-hygiene" => {
            "Scoped worker closures must not touch replay-ordered shared state"
        }
        "no-float-unordered-reduce" => "Float reductions over unordered sources reorder bytes",
        "metric-catalog-sync" => "Every declared metric is recorded; every use site is declared",
        "wire-schema-lock" => "Wire struct shapes must match the committed wire.lock",
        "determinism-taint" => {
            "Serialization sinks must not transitively depend on unordered state"
        }
        "unused-suppression" => "Inline allows must still suppress a real finding",
        "disjoint-band-writes" => {
            "Pool-dispatched closures write only through band-local &mut slices"
        }
        "atomics-ordering-audit" => {
            "Relaxed atomics and unsafe blocks carry sound() justifications locked in unsafe.lock"
        }
        "lock-then-wait-hygiene" => {
            "Condvar waits recheck their predicate; no second mutex under a pool guard"
        }
        _ => "ec-lint rule",
    }
}

/// Builds the complete SARIF 2.1.0 log for one lint run.
pub fn to_sarif(diags: &[Diagnostic]) -> Value {
    let rules: Vec<Value> = crate::KNOWN_RULES
        .iter()
        .map(|r| {
            let short = json!({ "text": rule_summary(r) });
            json!({ "id": *r, "shortDescription": short })
        })
        .collect();
    let results: Vec<Value> = diags.iter().map(result_of).collect();
    let driver = json!({
        "name": "ec-lint",
        "version": env!("CARGO_PKG_VERSION"),
        "rules": rules,
    });
    let tool = json!({ "driver": driver });
    let run = json!({ "tool": tool, "results": results, "columnKind": "utf16CodeUnits" });
    let runs = vec![run];
    json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": runs,
    })
}

fn result_of(d: &Diagnostic) -> Value {
    let mut text = d.message.clone();
    if let Some(note) = &d.note {
        text.push_str(" (");
        text.push_str(note);
        text.push(')');
    }
    let level = match d.severity {
        Severity::Error => "error",
        Severity::Warn => "warning",
    };
    let message = json!({ "text": text });
    let artifact = json!({ "uri": d.path, "uriBaseId": "%SRCROOT%" });
    let region = json!({ "startLine": d.line });
    let physical = json!({ "artifactLocation": artifact, "region": region });
    let location = json!({ "physicalLocation": physical });
    let locations = vec![location];
    let mut result = json!({
        "ruleId": d.rule,
        "level": level,
        "message": message,
        "locations": locations,
    });
    if let Some(idx) = crate::KNOWN_RULES.iter().position(|r| *r == d.rule) {
        result["ruleIndex"] = json!(idx);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: "no-panic-hot-path".into(),
                severity: Severity::Error,
                path: "crates/core/src/engine.rs".into(),
                line: 12,
                message: "`unwrap` can panic".into(),
                note: Some("call chain: a → b".into()),
            },
            Diagnostic {
                rule: "no-wall-clock".into(),
                severity: Severity::Warn,
                path: "crates/serve/src/service.rs".into(),
                line: 7,
                message: "std::time::Instant used".into(),
                note: None,
            },
        ]
    }

    #[test]
    fn log_shape_is_sarif_2_1_0() {
        let log = to_sarif(&sample());
        assert_eq!(log["version"].as_str(), Some("2.1.0"));
        let run = &log["runs"].as_array().expect("runs array")[0];
        assert_eq!(run["tool"]["driver"]["name"].as_str(), Some("ec-lint"));
        let rules = run["tool"]["driver"]["rules"].as_array().expect("rules");
        assert_eq!(rules.len(), crate::KNOWN_RULES.len());
        let results = run["results"].as_array().expect("results");
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn results_carry_level_location_and_note() {
        let log = to_sarif(&sample());
        let results = log["runs"][0]["results"].clone();
        let first = &results.as_array().expect("results")[0];
        assert_eq!(first["level"].as_str(), Some("error"));
        assert_eq!(
            first["locations"][0]["physicalLocation"]["artifactLocation"]["uri"].as_str(),
            Some("crates/core/src/engine.rs")
        );
        assert_eq!(
            first["locations"][0]["physicalLocation"]["region"]["startLine"].as_u64(),
            Some(12)
        );
        let text = first["message"]["text"].as_str().expect("text");
        assert!(text.contains("call chain"), "note folded into message: {text}");
        let second = &results.as_array().expect("results")[1];
        assert_eq!(second["level"].as_str(), Some("warning"));
        assert!(!second["message"]["text"].as_str().unwrap().contains('('));
    }

    #[test]
    fn rule_index_points_into_driver_rules() {
        let log = to_sarif(&sample());
        let run = &log["runs"].as_array().expect("runs")[0];
        let rules = run["tool"]["driver"]["rules"].as_array().expect("rules");
        for result in run["results"].as_array().expect("results") {
            let idx = result["ruleIndex"].as_u64().expect("index") as usize;
            assert_eq!(rules[idx]["id"].as_str(), result["ruleId"].as_str());
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let diags = sample();
        assert_eq!(to_sarif(&diags).to_string(), to_sarif(&diags).to_string());
    }

    #[test]
    fn empty_run_is_still_a_valid_log() {
        let log = to_sarif(&[]);
        assert_eq!(log["runs"][0]["results"].as_array().map(Vec::len), Some(0));
        assert_eq!(log["version"].as_str(), Some("2.1.0"));
    }
}
