//! The semantic rule families: scope-aware and cross-file passes built on
//! the parser ([`crate::parser`]) and workspace symbol table
//! ([`crate::symbols`]).
//!
//! Where the token-pattern rules in [`crate::rules`] ask "does this token
//! appear", these ask structural questions: *is this call inside a scoped
//! worker closure*, *does this reduce chain start from an unordered
//! source*, *is every declared metric recorded somewhere*, *did a wire
//! struct's shape drift from its lockfile*. They are still heuristics —
//! the escape hatch remains an inline `ec-lint` allow comment — but the
//! false-positive surface is far smaller than a bare token match.

use crate::callgraph::Analysis;
use crate::config::RuleConfig;
use crate::diag::Diagnostic;
use crate::effects::{receiver_is_shared_state, Effect, SEND_METHODS, TELEMETRY_METHODS};
use crate::lexer::{LexedFile, Tok, TokKind};
use crate::parser::ItemKind;
use crate::rules::{diag, ident_at, is_punct, matching_delim, punct_at, test_mask, typed_names};
use crate::symbols::Workspace;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Iterator adapters that reduce — order-sensitive for floats.
const REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];

/// Integer types whose addition is associative: a turbofish of one of
/// these exempts a `sum`/`product` from the float rule.
const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// `thread-scope-hygiene`: inside the closures handed to
/// `exec::run_workers`, `scope.spawn`, or `thread::scope`, worker code must
/// be pure compute — it returns results, and the engine thread replays them
/// in ascending worker order. Any mutation of shared replay-ordered state
/// from inside such a closure (`self`, a `SimNetwork` send, a telemetry
/// sink/registry/ring write, a `record_*` helper) would make the run's
/// bytes depend on thread interleaving. The symbol table is used to skip
/// `run_workers` calls that resolve to an unrelated function.
pub fn thread_scope_hygiene(
    rc: &RuleConfig,
    path: &str,
    file: &LexedFile,
    ws: &Workspace,
    analysis: &Analysis,
) -> Vec<Diagnostic> {
    let toks = &file.tokens;
    let mask = test_mask(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let spawn_site = match name {
            "run_workers" if is_punct(toks, i + 1, "(") => {
                // Skip if the name resolves to something that is not the
                // exec fan-out helper (an unresolved name stays in scope:
                // qualified `exec::run_workers(…)` calls resolve the
                // module, not the function).
                !matches!(ws.resolve(path, "run_workers"),
                    Some(fq) if !fq.split("::").any(|seg| seg == "exec"))
            }
            "spawn" if is_punct(toks, i + 1, "(") && is_punct(toks, i.wrapping_sub(1), ".") => true,
            "scope" if is_punct(toks, i + 1, "(") && i >= 2 && is_punct(toks, i - 1, ":") => true,
            _ => false,
        };
        if !spawn_site {
            continue;
        }
        let close = matching_delim(toks, i + 1, "(", ")");
        let Some(body) = closure_body_range(toks, i + 2, close) else { continue };
        scan_closure_body(rc, path, toks, body, &mut out);
        scan_closure_calls(rc, path, toks, body, analysis, &mut out);
    }
    // Nested spawn sites (scope → spawn) scan overlapping ranges; keep one
    // diagnostic per (line, message).
    out.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    out
}

/// The transitive half of `thread-scope-hygiene`: a call inside the
/// closure to any function that *reaches* a send or a replay-ordered
/// telemetry write is as unsafe as doing it inline — the effect still
/// happens on the worker thread. Resolved call sites within the closure's
/// token range are checked against the fixpoint effect sets; each finding
/// carries the call chain to the offending function as its note.
fn scan_closure_calls(
    rc: &RuleConfig,
    path: &str,
    toks: &[Tok],
    (start, end): (usize, usize),
    analysis: &Analysis,
    out: &mut Vec<Diagnostic>,
) {
    for (caller_fq, sites) in &analysis.edges {
        let Some(node) = analysis.nodes.get(caller_fq) else { continue };
        if node.path != path {
            continue;
        }
        for site in sites {
            if site.tok < start || site.tok >= end {
                continue;
            }
            let called = ident_at(toks, site.tok).unwrap_or("<call>");
            let fx = analysis.effects_of(&site.callee);
            for (effect, verb) in [
                (Effect::Sends, "emits network traffic"),
                (Effect::Telemetry, "writes replay-ordered telemetry"),
            ] {
                if !fx.contains(effect) {
                    continue;
                }
                let mut d = diag(
                    rc,
                    "thread-scope-hygiene",
                    path,
                    site.line,
                    format!(
                        "`{called}()` transitively {verb} inside a scoped worker closure; \
                         return the data and perform the effect during ordered replay"
                    ),
                );
                if let Some(chain) = analysis.chain(&site.callee, effect) {
                    d.note = Some(crate::callgraph::chain_note(&chain));
                }
                out.push(d);
            }
        }
    }
}

/// The reachability half of `no-panic-hot-path`: with `entry_points`
/// configured, every non-test function reachable from a superstep/serve
/// entry must be panic-free, wherever it lives — the `include` file list
/// becomes a fallback scope rather than the rule's definition. Each direct
/// `MayPanic` site in a reached function is flagged at its own line, with
/// the call chain from the entry point as the note. `exclude` prefixes
/// still carve files out; a pattern that matches nothing is itself an
/// error (a silently dead entry point would un-guard the whole path).
pub fn no_panic_reachable(rc: &RuleConfig, analysis: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    for pat in &rc.entry_points {
        let hits = analysis.resolve_pattern(pat);
        if hits.is_empty() {
            out.push(diag(
                rc,
                "no-panic-hot-path",
                "lint.toml",
                1,
                format!(
                    "entry point {pat:?} matches no function in the call graph; fix the \
                     [no-panic-hot-path] entry_points list"
                ),
            ));
        }
        entries.extend(hits);
    }
    entries.sort();
    entries.dedup();
    let reached = analysis.reachable_from(&entries);
    for fq in &reached {
        let Some(node) = analysis.nodes.get(fq) else { continue };
        if node.is_test || rc.excludes(&node.path) || !node.direct.contains(Effect::MayPanic) {
            continue;
        }
        let chain = entries
            .iter()
            .find_map(|e| analysis.path_between(e, fq))
            .map(|c| crate::callgraph::chain_note(&c));
        for site in &node.sites {
            if site.effect != Effect::MayPanic {
                continue;
            }
            let mut d = diag(
                rc,
                "no-panic-hot-path",
                &node.path,
                site.line,
                format!(
                    "{} can panic and is reachable from a superstep/serve entry point; \
                     propagate a typed error instead",
                    site.what
                ),
            );
            d.note = chain.clone();
            out.push(d);
        }
    }
    out
}

/// The effects whose reach into a serialization sink breaks byte-identity.
const TAINT_EFFECTS: [(Effect, &str); 3] = [
    (Effect::UnorderedIter, "iterates a hash container in process-random order"),
    (Effect::UnseededRng, "draws OS entropy from an unseeded RNG"),
    (Effect::WallClock, "reads the host wall clock"),
];

/// `determinism-taint`: functions named in `sinks` serialize run output
/// (`RunResult::to_json`, the wire encode paths). If anything such a sink
/// transitively calls iterates unordered state, draws OS entropy, or reads
/// the wall clock, the serialized bytes can differ between identical runs
/// — exactly the drift the byte-identity suite exists to catch, but found
/// statically and attributed to a call chain.
pub fn determinism_taint(rc: &RuleConfig, analysis: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pat in &rc.sinks {
        let hits = analysis.resolve_pattern(pat);
        if hits.is_empty() {
            out.push(diag(
                rc,
                "determinism-taint",
                "lint.toml",
                1,
                format!(
                    "sink {pat:?} matches no function in the call graph; fix the \
                     [determinism-taint] sinks list"
                ),
            ));
            continue;
        }
        for fq in hits {
            let Some(node) = analysis.nodes.get(&fq) else { continue };
            if node.is_test || rc.excludes(&node.path) {
                continue;
            }
            let fx = analysis.effects_of(&fq);
            for (effect, what) in TAINT_EFFECTS {
                if !fx.contains(effect) {
                    continue;
                }
                let mut d = diag(
                    rc,
                    "determinism-taint",
                    &node.path,
                    node.line,
                    format!(
                        "`{}` is a serialization sink but transitively {what}; order or \
                         seed the source before it feeds serialized output",
                        node.name
                    ),
                );
                if let Some(chain) = analysis.chain(&fq, effect) {
                    d.note = Some(crate::callgraph::chain_note(&chain));
                }
                out.push(d);
            }
        }
    }
    out
}

/// Finds the first closure literal in `[from, until)` and returns its body
/// token range (after the parameter list's closing `|`).
fn closure_body_range(toks: &[Tok], from: usize, until: usize) -> Option<(usize, usize)> {
    let mut j = from;
    while j < until {
        if is_punct(toks, j, "|") {
            // `|params|` or `||`; parameters cannot contain a bare `|`.
            let mut k = j + 1;
            while k < until && !is_punct(toks, k, "|") {
                k += 1;
            }
            if k < until {
                return Some((k + 1, until));
            }
            return None;
        }
        j += 1;
    }
    None
}

fn scan_closure_body(
    rc: &RuleConfig,
    path: &str,
    toks: &[Tok],
    (start, end): (usize, usize),
    out: &mut Vec<Diagnostic>,
) {
    for i in start..end.min(toks.len()) {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if name == "self" {
            out.push(diag(
                rc,
                "thread-scope-hygiene",
                path,
                toks[i].line,
                "`self` is captured inside a scoped worker closure; workers must return \
                 results for the engine's ordered replay instead of touching shared state"
                    .into(),
            ));
            continue;
        }
        let is_method_call = i >= 1 && is_punct(toks, i - 1, ".") && is_punct(toks, i + 1, "(");
        if is_method_call {
            let receiver = if i >= 2 { ident_at(toks, i - 2) } else { None };
            if SEND_METHODS.contains(&name) {
                let recv = receiver.unwrap_or("<expr>");
                out.push(diag(
                    rc,
                    "thread-scope-hygiene",
                    path,
                    toks[i].line,
                    format!(
                        "`{recv}.{name}()` emits network traffic inside a scoped worker \
                         closure; buffer the message and send it during the ordered replay \
                         after the join"
                    ),
                ));
            } else if TELEMETRY_METHODS.contains(&name)
                && receiver.is_some_and(receiver_is_shared_state)
            {
                let recv = receiver.unwrap_or_default();
                out.push(diag(
                    rc,
                    "thread-scope-hygiene",
                    path,
                    toks[i].line,
                    format!(
                        "`{recv}.{name}()` writes replay-ordered telemetry inside a scoped \
                         worker closure; record on the engine thread during ordered replay"
                    ),
                ));
            }
        }
        if name.starts_with("record_") && is_punct(toks, i + 1, "(") {
            out.push(diag(
                rc,
                "thread-scope-hygiene",
                path,
                toks[i].line,
                format!(
                    "`{name}()` records metrics inside a scoped worker closure; return the \
                     observation and record it during ordered replay"
                ),
            ));
        }
    }
}

/// `no-float-unordered-reduce`: a `sum`/`product`/`fold`/`reduce` chain
/// rooted at an unordered source (`HashMap`/`HashSet` binding, an mpsc
/// `Receiver`) accumulates floats in process-random order, and FP addition
/// is not associative — two runs of one config would disagree in the last
/// bits of `RunResult`. Integer turbofish reductions (`sum::<u64>()`) are
/// exempt: integer addition commutes exactly.
pub fn no_float_unordered_reduce(rc: &RuleConfig, path: &str, file: &LexedFile) -> Vec<Diagnostic> {
    let toks = &file.tokens;
    let mask = test_mask(toks);
    let sources = typed_names(toks, &mask, &["HashMap", "HashSet", "Receiver"]);
    if sources.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident || !sources.contains(&toks[i].text) {
            continue;
        }
        let source = toks[i].text.as_str();
        // Walk the method chain hanging off the binding.
        let mut j = i + 1;
        while j < toks.len() && is_punct(toks, j, ".") {
            let Some(method) = ident_at(toks, j + 1) else { break };
            let mut k = j + 2;
            // Optional turbofish: `::<T>`.
            let mut turbofish: Vec<&str> = Vec::new();
            if is_punct(toks, k, ":") && is_punct(toks, k + 1, ":") && is_punct(toks, k + 2, "<") {
                let close = angle_close(toks, k + 2);
                for t in &toks[k + 3..close.min(toks.len())] {
                    if t.kind == TokKind::Ident {
                        turbofish.push(t.text.as_str());
                    }
                }
                k = close + 1;
            }
            if !is_punct(toks, k, "(") {
                break; // field access or end of chain
            }
            if REDUCERS.contains(&method) {
                let int_exempt = matches!(method, "sum" | "product")
                    && turbofish.len() == 1
                    && INT_TYPES.contains(&turbofish[0]);
                if !int_exempt {
                    out.push(diag(
                        rc,
                        "no-float-unordered-reduce",
                        path,
                        toks[j + 1].line,
                        format!(
                            "`{source}.…{method}()` reduces over an unordered source; FP \
                             accumulation order changes the result bytes — collect and sort \
                             first, or reduce over an ordered container"
                        ),
                    ));
                }
            }
            j = matching_delim(toks, k, "(", ")") + 1;
        }
    }
    out
}

/// Index of the `>` closing the `<` at `open`, tolerant of `->`.
pub(crate) fn angle_close(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some("<") => depth += 1,
            Some("-") if punct_at(toks, i + 1) == Some(">") => i += 1,
            Some(">") => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// `metric-catalog-sync`: the `metric_catalog!` invocation is the single
/// source of truth for metric ids. Every declared variant must be recorded
/// somewhere outside its declaring file (dead ids silently skew the
/// paper's traffic accounting tables), and every `MetricId::X` use site
/// must name a declared variant (an undeclared one would not compile, but
/// the rule catches it at lint time with a pointed message — and, unlike
/// rustc, also catches it in not-yet-compiled cfg arms). Import aliases of
/// `MetricId` are resolved through the symbol table.
pub fn metric_catalog_sync(
    rc: &RuleConfig,
    scoped: &[String],
    lexed: &BTreeMap<String, LexedFile>,
    ws: &Workspace,
) -> Vec<Diagnostic> {
    // Locate the catalog declaration.
    let mut catalog: Option<(String, BTreeMap<String, usize>)> = None;
    for rel in scoped {
        let Some(parsed) = ws.parsed.get(rel) else { continue };
        for item in parsed.all_items() {
            if item.kind == ItemKind::MacroInvocation
                && item.name.as_deref() == Some("metric_catalog")
            {
                if let Some((start, end)) = item.body {
                    let toks = &lexed[rel].tokens;
                    let mut variants = BTreeMap::new();
                    for i in start..end.min(toks.len()) {
                        if toks[i].kind == TokKind::Ident
                            && is_punct(toks, i + 1, "=")
                            && is_punct(toks, i + 2, ">")
                        {
                            variants.entry(toks[i].text.clone()).or_insert(toks[i].line);
                        }
                    }
                    catalog = Some((rel.clone(), variants));
                }
            }
        }
        if catalog.is_some() {
            break;
        }
    }
    let Some((decl_file, declared)) = catalog else {
        let at = scoped.first().cloned().unwrap_or_else(|| "lint.toml".into());
        return vec![diag(
            rc,
            "metric-catalog-sync",
            &at,
            1,
            "no `metric_catalog! { … }` invocation found in this rule's scope; fix the \
             [metric-catalog-sync] include paths in lint.toml"
                .into(),
        )];
    };

    // Collect `MetricId::Variant` use sites everywhere except the
    // declaring file (whose macro body and `id_from_index` inverse match
    // mention every variant by construction).
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for rel in scoped {
        if *rel == decl_file {
            continue;
        }
        let Some(file) = lexed.get(rel) else { continue };
        let mut local_names = ws.local_names_for(rel, "MetricId");
        local_names.push("MetricId".to_string());
        let toks = &file.tokens;
        let mut seen_sites: BTreeSet<(usize, String)> = BTreeSet::new();
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || !local_names.contains(&toks[i].text) {
                continue;
            }
            if !(is_punct(toks, i + 1, ":") && is_punct(toks, i + 2, ":")) {
                continue;
            }
            let Some(variant) = ident_at(toks, i + 3) else { continue };
            // `MetricId::def` / iterator calls are method paths, not
            // variants — variants are uppercase-initial.
            if !variant.chars().next().is_some_and(char::is_uppercase) {
                continue;
            }
            used.insert(variant.to_string());
            if !declared.contains_key(variant)
                && seen_sites.insert((toks[i + 3].line, variant.to_string()))
            {
                out.push(diag(
                    rc,
                    "metric-catalog-sync",
                    rel,
                    toks[i + 3].line,
                    format!(
                        "`MetricId::{variant}` is not declared in `metric_catalog!`; add it \
                         to the catalog or fix the id"
                    ),
                ));
            }
        }
    }
    for (variant, line) in &declared {
        if !used.contains(variant) {
            out.push(diag(
                rc,
                "metric-catalog-sync",
                &decl_file,
                *line,
                format!(
                    "`MetricId::{variant}` is declared in `metric_catalog!` but recorded \
                     nowhere in scope; delete the dead id or wire up its record site"
                ),
            ));
        }
    }
    out
}

/// `wire-schema-lock`: fingerprints every non-test `Serialize` type in
/// scope (field names, types, and declaration order — wire tags depend on
/// order) and compares against the checked-in lockfile. Schema drift fails
/// with a diff of the two fingerprints; additions and removals fail until
/// the lock is regenerated deliberately with `UPDATE_WIRE_LOCK=1`, making
/// wire-format changes an explicit, reviewable act instead of a silent
/// corruption of the traffic-byte accounting.
pub fn wire_schema_lock(
    rc: &RuleConfig,
    root: &Path,
    scoped: &[String],
    ws: &Workspace,
) -> Vec<Diagnostic> {
    let lock_rel = rc.lock.as_deref().unwrap_or("wire.lock");
    // `path:Name` → (fingerprint, source file, line).
    let mut current: BTreeMap<String, (String, String, usize)> = BTreeMap::new();
    for rel in scoped {
        let Some(parsed) = ws.parsed.get(rel) else { continue };
        for item in parsed.all_items() {
            if item.is_test || !item.derives.iter().any(|d| d == "Serialize") {
                continue;
            }
            let Some(name) = &item.name else { continue };
            let fp = match item.kind {
                ItemKind::Struct | ItemKind::Union => {
                    format!("struct{}", fields_fp(&item.fields))
                }
                ItemKind::Enum => {
                    let vs: Vec<String> = item
                        .variants
                        .iter()
                        .map(|v| format!("{}{}", v.name, fields_fp(&v.fields)))
                        .collect();
                    format!("enum {}", vs.join("|"))
                }
                _ => continue,
            };
            current.insert(format!("{rel}:{name}"), (fp, rel.clone(), item.line));
        }
    }

    let lock_path = root.join(lock_rel);
    if std::env::var("UPDATE_WIRE_LOCK").as_deref() == Ok("1") {
        let mut text = String::from(
            "# ec-lint wire-schema-lock: field/type fingerprints of the Serialize wire types.\n\
             # A mismatch here means the wire format changed; regenerate deliberately with\n\
             #   UPDATE_WIRE_LOCK=1 cargo run -q -p ec-lint -- --check\n",
        );
        for (key, (fp, _, _)) in &current {
            text.push_str(&format!("{key} {fp}\n"));
        }
        if let Err(e) = std::fs::write(&lock_path, text) {
            return vec![diag(
                rc,
                "wire-schema-lock",
                lock_rel,
                1,
                format!("failed to write {lock_rel}: {e}"),
            )];
        }
        return Vec::new();
    }

    let Ok(lock_text) = std::fs::read_to_string(&lock_path) else {
        return vec![diag(
            rc,
            "wire-schema-lock",
            lock_rel,
            1,
            format!(
                "{lock_rel} is missing; generate it with `UPDATE_WIRE_LOCK=1 cargo run -q \
                 -p ec-lint -- --check` and commit it"
            ),
        )];
    };
    let mut locked: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (idx, line) in lock_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, fp)) = line.split_once(' ') {
            locked.insert(key.to_string(), (fp.to_string(), idx + 1));
        }
    }

    let mut out = Vec::new();
    for (key, (fp, rel, line)) in &current {
        match locked.get(key) {
            None => out.push(diag(
                rc,
                "wire-schema-lock",
                rel,
                *line,
                format!(
                    "`{}` is a Serialize wire type with no {lock_rel} entry; lock the new \
                     schema in with UPDATE_WIRE_LOCK=1",
                    key.rsplit(':').next().unwrap_or(key)
                ),
            )),
            Some((locked_fp, _)) if locked_fp != fp => out.push(diag(
                rc,
                "wire-schema-lock",
                rel,
                *line,
                format!(
                    "wire schema drift in `{}`:\n  locked:  {locked_fp}\n  current: {fp}\n  \
                     this changes on-the-wire bytes and the traffic accounting; if \
                     intentional, regen with UPDATE_WIRE_LOCK=1",
                    key.rsplit(':').next().unwrap_or(key)
                ),
            )),
            Some(_) => {}
        }
    }
    for (key, (_, lock_line)) in &locked {
        if !current.contains_key(key) {
            out.push(diag(
                rc,
                "wire-schema-lock",
                lock_rel,
                *lock_line,
                format!(
                    "{lock_rel} entry `{key}` no longer matches any Serialize type in \
                     scope; if the type was removed on purpose, regen with \
                     UPDATE_WIRE_LOCK=1"
                ),
            ));
        }
    }
    out
}

fn fields_fp(fields: &[crate::parser::Field]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    if fields[0].name.is_some() {
        let fs: Vec<String> = fields
            .iter()
            .map(|f| format!("{}:{}", f.name.as_deref().unwrap_or("_"), f.ty))
            .collect();
        format!("{{{}}}", fs.join(","))
    } else {
        let fs: Vec<&str> = fields.iter().map(|f| f.ty.as_str()).collect();
        format!("({})", fs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::lexer::lex;

    fn rc() -> RuleConfig {
        RuleConfig {
            severity: Severity::Error,
            include: vec!["".into()],
            exclude: vec![],
            lock: None,
            entry_points: Vec::new(),
            sinks: Vec::new(),
        }
    }

    fn ws_of(files: &[(&str, &str)]) -> (Workspace, BTreeMap<String, LexedFile>) {
        let map: BTreeMap<String, LexedFile> =
            files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
        let ws = Workspace::build(Path::new("/nonexistent-ws-root"), &map).expect("builds");
        (ws, map)
    }

    fn analysis_of(ws: &Workspace, map: &BTreeMap<String, LexedFile>) -> Analysis {
        let summaries: Vec<_> = map
            .iter()
            .map(|(rel, lexed)| {
                let module = ws.module_of(rel).unwrap_or("x").to_string();
                crate::callgraph::summarize_file(rel, &module, lexed, &ws.parsed[rel])
            })
            .collect();
        Analysis::build(ws, &summaries)
    }

    fn hygiene(files: &[(&str, &str)], path: &str) -> Vec<Diagnostic> {
        let (ws, map) = ws_of(files);
        let an = analysis_of(&ws, &map);
        thread_scope_hygiene(&rc(), path, &map[path], &ws, &an)
    }

    #[test]
    fn scope_hygiene_flags_sends_self_and_telemetry_in_closures() {
        let src = "fn go(&mut self) {\n\
                   let out = run_workers(t, n, |w| {\n\
                   self.step(w);\n\
                   network.send(w, msg);\n\
                   telemetry.add(id, lbl, 1);\n\
                   record_latency(w);\n\
                   w\n\
                   });\n\
                   }";
        let d = hygiene(&[("crates/core/src/engine.rs", src)], "crates/core/src/engine.rs");
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d[0].message.contains("`self`"));
        assert!(d[1].message.contains("network.send"));
        assert!(d[2].message.contains("telemetry.add"));
        assert!(d[3].message.contains("record_latency"));
    }

    #[test]
    fn scope_hygiene_allows_pure_compute_closures_and_replay_sends() {
        let src = "fn go() {\n\
                   let out = run_workers(t, n, |w| matmul(&h[w], &wts));\n\
                   for (w, r) in out.iter().enumerate() { network.send(w, r); }\n\
                   }";
        let d = hygiene(&[("crates/core/src/engine.rs", src)], "crates/core/src/engine.rs");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scope_hygiene_skips_unrelated_run_workers() {
        // A local fn named run_workers that resolves to a non-exec module.
        let src = "fn run_workers(n: usize, f: impl Fn(usize)) {}\n\
                   fn go() { run_workers(4, |w| { self_like.send(w); }); }";
        let d = hygiene(&[("crates/graph/src/pool.rs", src)], "crates/graph/src/pool.rs");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scope_hygiene_sees_scope_spawn() {
        let src =
            "fn go() { std::thread::scope(|s| { s.spawn(move || { sink.observe(m, l, v); }); }); }";
        let d = hygiene(&[("crates/core/src/exec.rs", src)], "crates/core/src/exec.rs");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("sink.observe"));
    }

    #[test]
    fn scope_hygiene_flags_transitive_sends_through_helpers() {
        // closure → helper (other file) → send: invisible to the direct
        // scan, caught by the call-graph half with a chain note.
        let engine = "use crate::helpers::ship_partial;\n\
                      fn go() {\n\
                      let out = run_workers(t, n, |w| {\n\
                      ship_partial(w);\n\
                      w\n\
                      });\n\
                      }";
        let helpers = "pub fn ship_partial(w: usize) { net.send(w, b); }";
        let d = hygiene(
            &[("crates/core/src/engine.rs", engine), ("crates/core/src/helpers.rs", helpers)],
            "crates/core/src/engine.rs",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("transitively emits network traffic"), "{d:?}");
        let note = d[0].note.as_deref().expect("chain note");
        assert!(note.contains("ship_partial"), "{note}");
    }

    #[test]
    fn scope_hygiene_allows_pure_helpers() {
        let engine = "use crate::helpers::square;\n\
                      fn go() { let out = run_workers(t, n, |w| square(w)); }";
        let helpers = "pub fn square(w: usize) -> usize { w * w }";
        let d = hygiene(
            &[("crates/core/src/engine.rs", engine), ("crates/core/src/helpers.rs", helpers)],
            "crates/core/src/engine.rs",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_reachability_walks_cross_file_chains() {
        let engine = "use crate::helpers::load;\n\
                      struct E;\nimpl E { fn run_epoch(&mut self) { load(0); } }";
        let helpers = "pub fn load(i: usize) -> u32 { table.get(i).unwrap() }";
        let (ws, map) = ws_of(&[
            ("crates/core/src/engine.rs", engine),
            ("crates/core/src/helpers.rs", helpers),
        ]);
        let an = analysis_of(&ws, &map);
        let mut cfg = rc();
        cfg.entry_points = vec!["E::run_epoch".into()];
        let d = no_panic_reachable(&cfg, &an);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].path, "crates/core/src/helpers.rs");
        assert!(d[0].note.as_deref().unwrap().contains("run_epoch"), "{d:?}");

        // Excluding the helper file silences it; a dead entry point errors.
        cfg.exclude = vec!["crates/core/src/helpers.rs".into()];
        assert!(no_panic_reachable(&cfg, &an).is_empty());
        cfg.exclude = vec![];
        cfg.entry_points = vec!["E::no_such_entry".into()];
        let d = no_panic_reachable(&cfg, &an);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("matches no function"), "{d:?}");
    }

    #[test]
    fn determinism_taint_flags_unordered_flows_into_sinks() {
        let report = "use crate::stats::summarize;\n\
                      struct RunResult;\nimpl RunResult {\n\
                      fn to_json(&self) -> String { summarize(&self.counts); String::new() }\n\
                      }";
        let stats = "pub fn summarize(counts: &HashMap<u32, u64>) -> u64 {\n\
                     let mut n = 0;\nfor v in counts.values() { n += v; }\nn\n}";
        let (ws, map) =
            ws_of(&[("crates/core/src/report.rs", report), ("crates/core/src/stats.rs", stats)]);
        let an = analysis_of(&ws, &map);
        let mut cfg = rc();
        cfg.sinks = vec!["RunResult::to_json".into()];
        let d = determinism_taint(&cfg, &an);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("process-random order"), "{d:?}");
        assert!(d[0].note.as_deref().unwrap().contains("summarize"), "{d:?}");

        // An unmatched sink pattern is its own error.
        cfg.sinks = vec!["Nothing::here".into()];
        let d = determinism_taint(&cfg, &an);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("matches no function"), "{d:?}");
    }

    #[test]
    fn float_reduce_flags_hash_sources_and_exempts_integer_turbofish() {
        let src = "fn f(weights: HashMap<u32, f64>) -> f64 {\n\
                   let a: f64 = weights.values().sum();\n\
                   let b: u64 = weights.keys().copied().sum::<u64>();\n\
                   let c = weights.values().fold(0.0, |acc, x| acc + x);\n\
                   a + b as f64 + c\n\
                   }";
        let d = no_float_unordered_reduce(&rc(), "x.rs", &lex(src));
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 4);
    }

    #[test]
    fn float_reduce_ignores_ordered_sources() {
        let src = "fn f(v: &[f64], m: HashMap<u32, f64>) -> f64 {\n\
                   let _ = m.len();\n\
                   v.iter().sum()\n\
                   }";
        assert!(no_float_unordered_reduce(&rc(), "x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn float_reduce_tracks_mpsc_receivers() {
        let src = "fn f(rx: Receiver<f32>) -> f32 { rx.iter().sum() }";
        let d = no_float_unordered_reduce(&rc(), "x.rs", &lex(src));
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn catalog_sync_finds_dead_and_undeclared_ids() {
        let decl = "metric_catalog! {\n\
                    Alive => { \"a\", Counter, \"n\", [epoch] },\n\
                    Dead => { \"d\", Counter, \"n\", [epoch] },\n\
                    }";
        let user = "use ec_trace::registry::MetricId;\n\
                    fn f(s: &mut Sink) {\n\
                    s.add(MetricId::Alive, l, 1);\n\
                    s.add(MetricId::Ghost, l, 1);\n\
                    }";
        let files =
            [("crates/telemetry/src/registry.rs", decl), ("crates/telemetry/src/sink.rs", user)];
        let (ws, map) = ws_of(&files);
        let scoped: Vec<String> = files.iter().map(|(p, _)| p.to_string()).collect();
        let d = metric_catalog_sync(&rc(), &scoped, &map, &ws);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("Ghost") && x.path.ends_with("sink.rs")));
        assert!(d.iter().any(|x| x.message.contains("Dead") && x.path.ends_with("registry.rs")));
    }

    #[test]
    fn catalog_sync_resolves_import_aliases() {
        let decl = "metric_catalog! { Alive => { \"a\", Counter, \"n\", [epoch] }, }";
        let user = "use ec_trace::registry::MetricId as Id;\nfn f() { record(Id::Alive); }";
        let files = [("crates/telemetry/src/registry.rs", decl), ("crates/core/src/fp.rs", user)];
        let (ws, map) = ws_of(&files);
        let scoped: Vec<String> = files.iter().map(|(p, _)| p.to_string()).collect();
        assert!(metric_catalog_sync(&rc(), &scoped, &map, &ws).is_empty());
    }

    #[test]
    fn catalog_sync_errors_when_no_catalog_in_scope() {
        let (ws, map) = ws_of(&[("crates/core/src/fp.rs", "fn f() {}")]);
        let d = metric_catalog_sync(&rc(), &["crates/core/src/fp.rs".into()], &map, &ws);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no `metric_catalog!"));
    }

    #[test]
    fn wire_lock_round_trips_through_a_tempdir() {
        let dir = std::env::temp_dir().join(format!("ec-lint-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = "#[derive(Serialize, Deserialize)]\npub struct P { a: u32, b: Vec<u8> }";
        let (ws, _) = ws_of(&[("src/wire.rs", src)]);
        let scoped = vec!["src/wire.rs".to_string()];
        let mut cfg = rc();
        cfg.lock = Some("wire.lock".into());

        // Missing lock → one error.
        let d = wire_schema_lock(&cfg, &dir, &scoped, &ws);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("missing"));

        // Write the expected lock by hand (env-var regen is exercised via
        // the CLI in the golden tests; mutating env vars here would race
        // the parallel test harness).
        std::fs::write(dir.join("wire.lock"), "# header\nsrc/wire.rs:P struct{a:u32,b:Vec<u8>}\n")
            .unwrap();
        assert!(wire_schema_lock(&cfg, &dir, &scoped, &ws).is_empty());

        // Drift → mismatch diagnostic with both fingerprints.
        std::fs::write(
            dir.join("wire.lock"),
            "src/wire.rs:P struct{a:u16,b:Vec<u8>}\nsrc/wire.rs:Gone struct{x:u8}\n",
        )
        .unwrap();
        let d = wire_schema_lock(&cfg, &dir, &scoped, &ws);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("drift") && x.message.contains("a:u16")));
        assert!(d.iter().any(|x| x.message.contains("no longer matches")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wire_lock_fingerprints_enums_in_declaration_order() {
        let src = "#[derive(Serialize, Deserialize)]\n\
                   pub enum FpMessage { Exact { h: Matrix }, Compressed(Quantized), Unit }";
        let (ws, _) = ws_of(&[("src/wire.rs", src)]);
        let mut cfg = rc();
        cfg.lock = Some("nope.lock".into());
        let d =
            wire_schema_lock(&cfg, Path::new("/nonexistent-ws-root"), &["src/wire.rs".into()], &ws);
        // Missing lock; the fingerprint itself is covered by building the
        // `current` map without panicking on all three variant shapes.
        assert_eq!(d.len(), 1);
    }
}
