//! A hand-rolled Rust lexer — just enough fidelity for token-pattern
//! linting.
//!
//! The goal is *never to misread what is code*: comments (line and block,
//! including nested block comments), string literals (plain, raw with any
//! number of `#`s, byte strings), and char literals (vs. lifetimes) must
//! all be skipped exactly, or the rules would fire on prose. Everything
//! that *is* code comes out as a flat token stream with line numbers;
//! no parsing beyond that is attempted.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A char literal (`'x'`, `'\n'`).
    Char,
    /// A string literal of any flavor (plain, raw, byte).
    Str,
    /// A numeric literal.
    Num,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Punct`, the single character; for `Str`, the
    /// contents are not preserved — rules never look inside strings).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// An `// ec-lint: allow(rule-a, rule-b)` suppression found in a comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: usize,
    /// The suppressed rule name (one `Suppression` per name).
    pub rule: String,
}

/// An `// ec-lint: sound(reason)` justification found in a comment: the
/// structured escape hatch the `atomics-ordering-audit` rule requires next
/// to every `Ordering::Relaxed` access and `unsafe` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoundMarker {
    /// 1-based line of the comment.
    pub line: usize,
    /// The free-text justification between the parentheses.
    pub reason: String,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct LexedFile {
    /// All code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Inline suppressions collected from comments.
    pub suppressions: Vec<Suppression>,
    /// Inline soundness justifications collected from comments.
    pub sound_markers: Vec<SoundMarker>,
}

const ALLOW_MARKER: &str = "ec-lint: allow(";
const SOUND_MARKER: &str = "ec-lint: sound(";

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts `ec-lint: allow(...)` rule names from a comment's text.
///
/// Only well-formed rule names (lowercase ASCII, digits, `-`) register:
/// prose like `allow(<rule>)` in documentation stays inert instead of
/// becoming a pseudo-suppression the `unused-suppression` rule would flag.
fn scan_comment(text: &str, line: usize, out: &mut Vec<Suppression>) {
    let Some(pos) = text.find(ALLOW_MARKER) else { return };
    let rest = &text[pos + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else { return };
    for rule in rest[..close].split(',') {
        let rule = rule.trim();
        let well_formed = !rule.is_empty()
            && rule.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if well_formed {
            out.push(Suppression { line, rule: rule.to_string() });
        }
    }
}

/// Extracts an `ec-lint: sound(reason)` justification from a comment's
/// text. The reason is free prose; it ends at the parenthesis matching the
/// marker's open paren (nested parens inside the reason are balanced), and
/// an empty reason does not register — a justification must say something.
fn scan_sound(text: &str, line: usize, out: &mut Vec<SoundMarker>) {
    let Some(pos) = text.find(SOUND_MARKER) else { return };
    let rest = &text[pos + SOUND_MARKER.len()..];
    let mut depth = 1usize;
    let mut end = None;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(end) = end else { return };
    let reason = rest[..end].trim();
    if !reason.is_empty() {
        out.push(SoundMarker { line, reason: reason.to_string() });
    }
}

/// Lexes `src` into tokens plus suppression comments. Never fails: on a
/// malformed tail (unterminated string/comment) the remainder is consumed
/// as the current token and lexing ends.
pub fn lex(src: &str) -> LexedFile {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = LexedFile::default();

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            scan_comment(&text, line, &mut out.suppressions);
            scan_sound(&text, line, &mut out.sound_markers);
            continue; // the `\n` is consumed by the whitespace arm
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            let text: String = b[start..i.min(n)].iter().collect();
            scan_comment(&text, start_line, &mut out.suppressions);
            scan_sound(&text, start_line, &mut out.sound_markers);
            continue;
        }
        // Raw strings: r"..."  r#"..."#  br##"..."## — any hash count.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 2;
            } else if b[j] == 'r' {
                j += 1;
            } else if b[j] == 'b' && j + 1 < n && b[j + 1] == '"' {
                // Byte string b"..." — handled by the plain-string arm below
                // after skipping the prefix.
                j += 1;
            } else {
                j = i; // plain identifier starting with r/b
            }
            if j > i && j < n && (b[j] == '"' || b[j] == '#') {
                let is_raw = b[j - 1] == 'r';
                if is_raw {
                    let mut hashes = 0usize;
                    while j < n && b[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && b[j] == '"' {
                        // Found `r#*"`: scan to `"` followed by `hashes` #s.
                        let tok_line = line;
                        // Recount lines across the skipped region.
                        while i < j {
                            bump!();
                        }
                        bump!(); // opening quote
                        loop {
                            if i >= n {
                                break;
                            }
                            if b[i] == '"' {
                                let mut k = 0usize;
                                while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    bump!();
                                    for _ in 0..hashes {
                                        bump!();
                                    }
                                    break;
                                }
                            }
                            bump!();
                        }
                        out.tokens.push(Tok {
                            kind: TokKind::Str,
                            text: String::new(),
                            line: tok_line,
                        });
                        continue;
                    }
                    // `r#ident` (raw identifier) or stray `r#` — fall through
                    // to the identifier arm.
                } else {
                    // b"..." — plain string with a prefix byte.
                    let tok_line = line;
                    while i < j {
                        bump!();
                    }
                    lex_plain_string(&b, &mut i, &mut line);
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
            }
        }
        // Plain string.
        if c == '"' {
            let tok_line = line;
            lex_plain_string(&b, &mut i, &mut line);
            out.tokens.push(Tok { kind: TokKind::Str, text: String::new(), line: tok_line });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let tok_line = line;
            // `'\...'` is always a char literal.
            if i + 1 < n && b[i + 1] == '\\' {
                i += 2; // quote + backslash
                if i < n {
                    i += 1; // escaped char (or escape head, e.g. `u`)
                }
                while i < n && b[i] != '\'' {
                    bump!();
                }
                if i < n {
                    i += 1; // closing quote
                }
                out.tokens.push(Tok { kind: TokKind::Char, text: String::new(), line: tok_line });
                continue;
            }
            // `'X'` (any single non-quote char then a quote) is a char
            // literal; `'ident` with no closing quote is a lifetime.
            if i + 2 < n && b[i + 1] != '\'' && b[i + 2] == '\'' && !is_ident_continue(b[i + 2]) {
                bump!();
                bump!();
                bump!();
                out.tokens.push(Tok { kind: TokKind::Char, text: String::new(), line: tok_line });
                continue;
            }
            if i + 1 < n && is_ident_start(b[i + 1]) {
                // Lifetime: consume `'` + identifier.
                bump!();
                let start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.tokens.push(Tok { kind: TokKind::Lifetime, text, line: tok_line });
                continue;
            }
            // Degenerate (`'`, then punctuation): emit as punct.
            out.tokens.push(Tok { kind: TokKind::Punct, text: "'".into(), line: tok_line });
            bump!();
            continue;
        }
        // Identifier / keyword (including `r#raw` identifiers).
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            // Raw identifier prefix `r#` glues to the following ident.
            if i < n
                && b[i] == '#'
                && i + 1 < n
                && is_ident_start(b[i + 1])
                && (i - start) == 1
                && (b[start] == 'r' || b[start] == 'b')
            {
                i += 1;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            out.tokens.push(Tok { kind: TokKind::Ident, text, line });
            continue;
        }
        // Number: digits, then alnum/underscore (type suffixes, hex), and a
        // fractional part when the dot is followed by a digit (so `0..n`
        // keeps its range dots as punctuation).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            out.tokens.push(Tok { kind: TokKind::Num, text, line });
            continue;
        }
        // Everything else: one punct char.
        out.tokens.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        bump!();
    }
    out
}

/// Consumes a `"…"` string starting at `*i` (the opening quote), honoring
/// backslash escapes; updates the line counter for embedded newlines.
fn lex_plain_string(b: &[char], i: &mut usize, line: &mut usize) {
    debug_assert_eq!(b[*i], '"');
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            '\\' => {
                *i += 2; // skip the escape pair (covers \" and \\)
            }
            '"' => {
                *i += 1;
                return;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_skipped() {
        let src = "let a = 1; // HashMap here is prose\nlet b = 2;";
        assert_eq!(idents(src), ["let", "a", "let", "b"]);
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let src = "before /* outer /* inner HashMap */ still comment */ after";
        assert_eq!(idents(src), ["before", "after"]);
    }

    #[test]
    fn block_comment_tracks_lines() {
        let src = "/* line one\nline two */ token";
        let f = lex(src);
        assert_eq!(f.tokens[0].line, 2);
    }

    #[test]
    fn strings_are_opaque() {
        let src = r#"let s = "HashMap .iter() \" quoted"; next"#;
        assert_eq!(idents(src), ["let", "s", "next"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and HashMap"#; after"###;
        assert_eq!(idents(src), ["let", "s", "after"]);
    }

    #[test]
    fn raw_strings_with_two_hashes() {
        let src = "let s = r##\"one \"# hash inside\"##; tail";
        assert_eq!(idents(src), ["let", "s", "tail"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"bytes HashMap\"; let c = br#\"raw bytes\"#; done";
        assert_eq!(idents(src), ["let", "a", "let", "c", "done"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let f = lex(src);
        let lifetimes: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let src = r"let c = 'x'; let q = '\''; let nl = '\n'; let u = '\u{1F600}'; end";
        let f = lex(src);
        let chars = f.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 4);
        assert_eq!(f.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 0);
        assert_eq!(f.tokens.last().unwrap().text, "end");
    }

    #[test]
    fn char_literal_with_punctuation_payload() {
        let src = "let open = '('; let quote = '\"'; tail";
        let f = lex(src);
        assert_eq!(f.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert_eq!(idents(src), ["let", "open", "let", "quote", "tail"]);
    }

    #[test]
    fn range_dots_stay_punctuation() {
        let f = lex("for i in 0..10 {}");
        let puncts: String =
            f.tokens.iter().filter(|t| t.kind == TokKind::Punct).map(|t| t.text.as_str()).collect();
        assert!(puncts.contains(".."), "range dots lost: {puncts}");
    }

    #[test]
    fn floats_consume_their_dot() {
        let f = lex("let x = 1.5;");
        let nums: Vec<_> =
            f.tokens.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.clone()).collect();
        assert_eq!(nums, ["1.5"]);
    }

    #[test]
    fn suppression_comments_are_collected() {
        let src = "let a = 1; // ec-lint: allow(no-wall-clock, no-unseeded-rng)\nlet b = 2;";
        let f = lex(src);
        assert_eq!(
            f.suppressions,
            vec![
                Suppression { line: 1, rule: "no-wall-clock".into() },
                Suppression { line: 1, rule: "no-unseeded-rng".into() },
            ]
        );
    }

    #[test]
    fn sound_markers_are_collected_with_balanced_parens() {
        let src = "// ec-lint: sound(monotonic token (id) allocation)\nlet t = next();\n\
                   // ec-lint: sound()\nlet u = 0;";
        let f = lex(src);
        assert_eq!(
            f.sound_markers,
            vec![SoundMarker { line: 1, reason: "monotonic token (id) allocation".into() }],
            "empty reasons must not register"
        );
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line\nbreak\";\nInstant";
        let f = lex(src);
        let inst = f.tokens.iter().find(|t| t.text == "Instant").unwrap();
        assert_eq!(inst.line, 3);
    }
}
