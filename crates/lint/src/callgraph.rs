//! The workspace call graph: per-file function summaries, best-effort call
//! resolution through the symbol table, and the [`Analysis`] bundle the
//! transitive rules consume.
//!
//! Resolution is deliberately best-effort, mirroring the symbol table's
//! philosophy: free calls resolve through imports and module siblings,
//! `A::b` paths through the import map (`Self`/`crate` normalized), and
//! method calls by receiver (`self.helper()` lands on the enclosing impl)
//! or — when the method name is unique across all impls and not a
//! ubiquitous std name — by that unique definition. Unresolvable calls
//! (trait objects, std methods, closures passed as values) simply produce
//! no edge, so the analysis under-approximates reachability; it never
//! invents edges. All containers are BTree-ordered, so the graph — and
//! everything derived from it — is byte-deterministic.

use crate::effects::{scan_direct, EffectSet, EffectSite};
use crate::lexer::{LexedFile, TokKind};
use crate::parser::{Item, ItemKind, ParsedFile};
use crate::rules::{ident_at, is_punct, test_mask, typed_names};
use crate::symbols::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// Method names so ubiquitous across std and the workspace that a
/// unique-definition match on them would almost always be a false edge.
const COMMON_METHOD_NAMES: &[&str] = &[
    "new",
    "clone",
    "default",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "iter",
    "iter_mut",
    "next",
    "into_iter",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_str",
    "to_vec",
    "to_string",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "from",
    "into",
    "write",
    "read",
    "flush",
    "min",
    "max",
    "abs",
    "sqrt",
    "take",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "expect",
    "unwrap",
    "sum",
    "fold",
    "collect",
    "filter",
    "any",
    "all",
    "count",
    "zip",
    "enumerate",
];

/// Keywords that can syntactically precede a `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "fn",
    "in", "move", "ref", "mut", "pub", "use", "mod", "impl", "trait", "struct", "enum", "union",
    "where", "as", "dyn", "unsafe", "async", "await", "const", "static", "type", "extern",
];

/// One unresolved call occurrence inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RawCallKind {
    /// `name(…)` with no path or receiver.
    Free(String),
    /// `recv.name(…)`; `recv` is the identifier directly before the dot,
    /// when there is one (`None` for chained or complex receivers).
    Method { name: String, recv: Option<String> },
    /// `a::b::c(…)`, segments in source order (includes `Self`/`crate`).
    Qualified(Vec<String>),
}

/// One call site, before resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawCall {
    /// What was called.
    pub kind: RawCallKind,
    /// 1-based source line of the callee name.
    pub line: usize,
    /// Token index of the callee name (lets closure scans range-filter).
    pub tok: usize,
}

/// One function definition with its direct effects and raw call sites.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Fully-qualified name (`ec_graph::engine::DistributedEngine::run_epoch`).
    pub fq: String,
    /// Defining file (workspace-relative, `/`-separated).
    pub path: String,
    /// 1-based line of the `fn`.
    pub line: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing impl's self type, for associated fns.
    pub impl_ty: Option<String>,
    /// True for `#[test]`/`#[cfg(test)]` functions (excluded from effects).
    pub is_test: bool,
    /// Token range of the body interior in the defining file.
    pub body: Option<(usize, usize)>,
    /// Direct effects of the body (empty for test fns).
    pub direct: EffectSet,
    /// Where each direct effect occurs.
    pub sites: Vec<EffectSite>,
    /// Unresolved calls the body makes (test fns record none).
    pub calls: Vec<RawCall>,
}

/// The cacheable per-file unit: every function the file defines, with
/// direct effects computed and calls left unresolved (resolution is a
/// cross-file question re-answered each run).
#[derive(Clone, Debug)]
pub struct FileSummary {
    /// Workspace-relative path.
    pub rel: String,
    /// The file's module path (`ec_graph::engine`).
    pub module: String,
    /// Functions in source order.
    pub fns: Vec<FnNode>,
}

/// Summarizes one parsed file: walks the item tree tracking the module
/// path and enclosing impl type, and scans each non-test fn body for
/// direct effects and raw calls.
pub fn summarize_file(
    rel: &str,
    module: &str,
    lexed: &LexedFile,
    parsed: &ParsedFile,
) -> FileSummary {
    let toks = &lexed.tokens;
    let mask = test_mask(toks);
    let unordered = typed_names(toks, &mask, &["HashMap", "HashSet", "Receiver"]);
    let mut fns = Vec::new();
    walk_items(&parsed.items, module, None, rel, lexed, &mask, &unordered, &mut fns);
    FileSummary { rel: rel.to_string(), module: module.to_string(), fns }
}

#[allow(clippy::too_many_arguments)]
fn walk_items(
    items: &[Item],
    module: &str,
    impl_ty: Option<&str>,
    rel: &str,
    lexed: &LexedFile,
    mask: &[bool],
    unordered: &BTreeSet<String>,
    out: &mut Vec<FnNode>,
) {
    for item in items {
        match item.kind {
            ItemKind::Fn => {
                let Some(name) = &item.name else { continue };
                let fq = match impl_ty {
                    Some(ty) => format!("{module}::{ty}::{name}"),
                    None => format!("{module}::{name}"),
                };
                let (direct, sites, calls) = match (item.is_test, item.body) {
                    (false, Some(body)) => {
                        let (set, sites) = scan_direct(&lexed.tokens, mask, body, unordered);
                        let calls = collect_raw_calls(lexed, mask, body);
                        (set, sites, calls)
                    }
                    _ => (EffectSet::EMPTY, Vec::new(), Vec::new()),
                };
                out.push(FnNode {
                    fq,
                    path: rel.to_string(),
                    line: item.line,
                    name: name.clone(),
                    impl_ty: impl_ty.map(str::to_string),
                    is_test: item.is_test,
                    body: item.body,
                    direct,
                    sites,
                    calls,
                });
            }
            ItemKind::Mod => {
                if let Some(name) = &item.name {
                    let sub = format!("{module}::{name}");
                    walk_items(&item.children, &sub, None, rel, lexed, mask, unordered, out);
                }
            }
            ItemKind::Impl => {
                let base = item
                    .impl_ty
                    .as_deref()
                    .map(|ty| ty.split('<').next().unwrap_or(ty).trim().to_string());
                walk_items(
                    &item.children,
                    module,
                    base.as_deref(),
                    rel,
                    lexed,
                    mask,
                    unordered,
                    out,
                );
            }
            ItemKind::Trait => {
                // Default method bodies: attribute to `module::TraitName`.
                if let Some(name) = &item.name {
                    walk_items(
                        &item.children,
                        module,
                        Some(name),
                        rel,
                        lexed,
                        mask,
                        unordered,
                        out,
                    );
                }
            }
            _ => {}
        }
    }
}

/// Extracts the raw call occurrences in `[range.0, range.1)`. Macro
/// invocations (`name!`) never match because the `(` test looks at the
/// token directly after the name.
pub(crate) fn collect_raw_calls(
    lexed: &LexedFile,
    mask: &[bool],
    range: (usize, usize),
) -> Vec<RawCall> {
    let toks = &lexed.tokens;
    let (start, end) = (range.0, range.1.min(toks.len()));
    let mut out = Vec::new();
    for i in start..end {
        if mask.get(i).copied().unwrap_or(false)
            || toks[i].kind != TokKind::Ident
            || !is_punct(toks, i + 1, "(")
        {
            continue;
        }
        let name = toks[i].text.as_str();
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let line = toks[i].line;
        if i >= 1 && is_punct(toks, i - 1, ".") {
            let recv = if i >= 2 { ident_at(toks, i - 2).map(str::to_string) } else { None };
            out.push(RawCall {
                kind: RawCallKind::Method { name: name.into(), recv },
                line,
                tok: i,
            });
        } else if i >= 2 && is_punct(toks, i - 1, ":") && is_punct(toks, i - 2, ":") {
            // Walk the `::`-separated path backwards.
            let mut segs = vec![name.to_string()];
            let mut j = i;
            while j >= 3
                && is_punct(toks, j - 1, ":")
                && is_punct(toks, j - 2, ":")
                && ident_at(toks, j - 3).is_some()
            {
                segs.push(toks[j - 3].text.clone());
                j -= 3;
            }
            segs.reverse();
            out.push(RawCall { kind: RawCallKind::Qualified(segs), line, tok: i });
        } else {
            out.push(RawCall { kind: RawCallKind::Free(name.into()), line, tok: i });
        }
    }
    out
}

/// One resolved edge occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Fully-qualified callee.
    pub callee: String,
    /// 1-based source line of the call.
    pub line: usize,
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
}

/// The resolved call graph plus inferred effects — everything the
/// transitive rules need, built once per run.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Every function, keyed by fully-qualified name.
    pub nodes: BTreeMap<String, FnNode>,
    /// Resolved call sites per caller, in token order.
    pub edges: BTreeMap<String, Vec<CallSite>>,
    /// Sorted, deduplicated callee lists (the BFS adjacency).
    pub adjacency: BTreeMap<String, Vec<String>>,
    /// Direct effects per function.
    pub direct: BTreeMap<String, EffectSet>,
    /// Transitive (fixpoint) effects per function.
    pub all: BTreeMap<String, EffectSet>,
}

impl Analysis {
    /// Builds the analysis from per-file summaries: merges duplicate
    /// definitions (cfg arms, same-named methods in one impl chain),
    /// resolves raw calls to edges, and runs effect inference to fixpoint.
    pub fn build(ws: &Workspace, summaries: &[FileSummary]) -> Self {
        let mut nodes: BTreeMap<String, FnNode> = BTreeMap::new();
        for s in summaries {
            for f in &s.fns {
                match nodes.get_mut(&f.fq) {
                    Some(existing) => {
                        // Duplicate fq: union the effects, keep both call
                        // lists. The first definition's location wins.
                        existing.direct.join(f.direct);
                        existing.sites.extend(f.sites.iter().cloned());
                        existing.calls.extend(f.calls.iter().cloned());
                        existing.is_test &= f.is_test;
                    }
                    None => {
                        nodes.insert(f.fq.clone(), f.clone());
                    }
                }
            }
        }

        // Suffix indexes for fallback resolution.
        let mut by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (fq, node) in &nodes {
            if node.is_test {
                continue;
            }
            by_name.entry(node.name.as_str()).or_default().push(fq.as_str());
            if node.impl_ty.is_some() {
                methods_by_name.entry(node.name.as_str()).or_default().push(fq.as_str());
            }
        }

        let resolver = Resolver { ws, nodes: &nodes, by_name, methods_by_name };
        let mut edges: BTreeMap<String, Vec<CallSite>> = BTreeMap::new();
        let mut per_file: BTreeMap<&str, &FileSummary> = BTreeMap::new();
        for s in summaries {
            per_file.insert(s.rel.as_str(), s);
        }
        for (fq, node) in &nodes {
            let module = per_file.get(node.path.as_str()).map(|s| s.module.as_str()).unwrap_or("");
            let mut sites = Vec::new();
            for call in &node.calls {
                if let Some(callee) = resolver.resolve_call(&node.path, module, node, call) {
                    if callee != *fq {
                        sites.push(CallSite { callee, line: call.line, tok: call.tok });
                    }
                }
            }
            edges.insert(fq.clone(), sites);
        }

        let mut adjacency: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (caller, sites) in &edges {
            let mut callees: Vec<String> = sites.iter().map(|s| s.callee.clone()).collect();
            callees.sort();
            callees.dedup();
            adjacency.insert(caller.clone(), callees);
        }

        let direct: BTreeMap<String, EffectSet> =
            nodes.iter().map(|(fq, n)| (fq.clone(), n.direct)).collect();
        let all = crate::effects::infer(&adjacency, &direct);
        Self { nodes, edges, adjacency, direct, all }
    }

    /// Transitive effects of `fq` (empty for unknown functions).
    pub fn effects_of(&self, fq: &str) -> EffectSet {
        self.all.get(fq).copied().unwrap_or(EffectSet::EMPTY)
    }

    /// Shortest call chain from `from` to a function directly exhibiting
    /// `effect` (see [`crate::effects::chain_to_effect`]).
    pub fn chain(&self, from: &str, effect: crate::effects::Effect) -> Option<Vec<String>> {
        crate::effects::chain_to_effect(&self.adjacency, &self.direct, from, effect)
    }

    /// Every function reachable from `entries` (inclusive), BFS order
    /// collapsed into a sorted set.
    pub fn reachable_from(&self, entries: &[String]) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: Vec<String> = Vec::new();
        for e in entries {
            if seen.insert(e.clone()) {
                queue.push(e.clone());
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let cur = queue[qi].clone();
            qi += 1;
            if let Some(callees) = self.adjacency.get(&cur) {
                for c in callees {
                    if seen.insert(c.clone()) {
                        queue.push(c.clone());
                    }
                }
            }
        }
        seen
    }

    /// Shortest call path `from → … → to` over the adjacency (BFS with
    /// sorted neighbors, so ties break deterministically). `from == to`
    /// yields a one-element path.
    pub fn path_between(&self, from: &str, to: &str) -> Option<Vec<String>> {
        if from == to {
            return Some(vec![from.to_string()]);
        }
        let mut parent: BTreeMap<String, String> = BTreeMap::new();
        let mut queue: Vec<String> = vec![from.to_string()];
        parent.insert(from.to_string(), String::new());
        let mut qi = 0;
        while qi < queue.len() {
            let cur = queue[qi].clone();
            qi += 1;
            let Some(callees) = self.adjacency.get(&cur) else { continue };
            for c in callees {
                if parent.contains_key(c) {
                    continue;
                }
                parent.insert(c.clone(), cur.clone());
                if c == to {
                    let mut path = vec![c.clone()];
                    let mut at = cur.clone();
                    while !at.is_empty() {
                        path.push(at.clone());
                        at = parent[&at].clone();
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push(c.clone());
            }
        }
        None
    }

    /// Resolves an entry-point pattern from lint.toml: an exact
    /// fully-qualified name, or a `::`-suffix matched against all non-test
    /// functions. Returns all matches, sorted.
    pub fn resolve_pattern(&self, pattern: &str) -> Vec<String> {
        if self.nodes.contains_key(pattern) {
            return vec![pattern.to_string()];
        }
        let suffix = format!("::{pattern}");
        self.nodes
            .iter()
            .filter(|(fq, n)| !n.is_test && fq.ends_with(&suffix))
            .map(|(fq, _)| fq.clone())
            .collect()
    }
}

/// Formats a chain note: `call chain: a → b → c`.
pub fn chain_note(chain: &[String]) -> String {
    format!("call chain: {}", chain.join(" → "))
}

struct Resolver<'a> {
    ws: &'a Workspace,
    nodes: &'a BTreeMap<String, FnNode>,
    by_name: BTreeMap<&'a str, Vec<&'a str>>,
    methods_by_name: BTreeMap<&'a str, Vec<&'a str>>,
}

impl<'a> Resolver<'a> {
    fn resolve_call(
        &self,
        rel: &str,
        module: &str,
        caller: &FnNode,
        call: &RawCall,
    ) -> Option<String> {
        match &call.kind {
            RawCallKind::Free(name) => {
                if let Some(fq) = self.ws.resolve(rel, name) {
                    if self.nodes.contains_key(&fq) {
                        return Some(fq);
                    }
                }
                // A method of the enclosing impl called without `self.`
                // (associated fns), then a unique free definition anywhere.
                if let Some(ty) = &caller.impl_ty {
                    let sibling = format!("{module}::{ty}::{name}");
                    if self.nodes.contains_key(&sibling) {
                        return Some(sibling);
                    }
                }
                self.unique(&self.by_name, name)
            }
            RawCallKind::Method { name, recv } => {
                if recv.as_deref() == Some("self") {
                    if let Some(ty) = &caller.impl_ty {
                        let sibling = format!("{module}::{ty}::{name}");
                        if self.nodes.contains_key(&sibling) {
                            return Some(sibling);
                        }
                    }
                }
                if COMMON_METHOD_NAMES.contains(&name.as_str()) {
                    return None;
                }
                self.unique(&self.methods_by_name, name)
            }
            RawCallKind::Qualified(segs) => {
                if segs.is_empty() {
                    return None;
                }
                let mut segs = segs.clone();
                // Normalize `Self` and `crate` heads.
                if segs[0] == "Self" {
                    let ty = caller.impl_ty.as_deref()?;
                    segs[0] = ty.to_string();
                    let candidate = format!("{module}::{}", segs.join("::"));
                    return self.nodes.contains_key(&candidate).then_some(candidate);
                }
                if segs[0] == "crate" {
                    let crate_name = module.split("::").next().unwrap_or(module);
                    segs[0] = crate_name.to_string();
                    let candidate = segs.join("::");
                    return self.nodes.contains_key(&candidate).then_some(candidate);
                }
                // Resolve the head through the import map, then try the
                // path as written, then module-local, then unique suffix.
                if let Some(head_fq) = self.ws.resolve(rel, &segs[0]) {
                    let candidate = format!("{head_fq}::{}", segs[1..].join("::"));
                    if self.nodes.contains_key(&candidate) {
                        return Some(candidate);
                    }
                }
                let as_written = segs.join("::");
                if self.nodes.contains_key(&as_written) {
                    return Some(as_written);
                }
                let local = format!("{module}::{as_written}");
                if self.nodes.contains_key(&local) {
                    return Some(local);
                }
                let suffix = format!("::{as_written}");
                let mut hits: Vec<&str> = self
                    .nodes
                    .iter()
                    .filter(|(fq, n)| !n.is_test && fq.ends_with(&suffix))
                    .map(|(fq, _)| fq.as_str())
                    .collect();
                hits.sort();
                hits.dedup();
                (hits.len() == 1).then(|| hits[0].to_string())
            }
        }
    }

    fn unique(&self, index: &BTreeMap<&str, Vec<&str>>, name: &str) -> Option<String> {
        match index.get(name).map(Vec::as_slice) {
            Some([one]) => Some((*one).to_string()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::Effect;
    use crate::lexer::lex;
    use std::path::Path;

    fn analyze(files: &[(&str, &str)]) -> Analysis {
        let map: BTreeMap<String, LexedFile> =
            files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
        let ws = Workspace::build(Path::new("/nonexistent-ws-root"), &map).expect("builds");
        let summaries: Vec<FileSummary> = map
            .iter()
            .map(|(rel, lexed)| {
                let module = ws.module_of(rel).unwrap_or("x").to_string();
                summarize_file(rel, &module, lexed, &ws.parsed[rel])
            })
            .collect();
        Analysis::build(&ws, &summaries)
    }

    #[test]
    fn free_calls_resolve_through_imports_across_files() {
        let a = analyze(&[
            ("crates/core/src/engine.rs", "use crate::helpers::ship;\nfn go() { ship(); }"),
            ("crates/core/src/helpers.rs", "pub fn ship(net: &mut N) { net.send(0, b); }"),
        ]);
        assert!(a.effects_of("core::engine::go").contains(Effect::Sends));
        let chain = a.chain("core::engine::go", Effect::Sends).unwrap();
        assert_eq!(chain, vec!["core::engine::go", "core::helpers::ship"]);
    }

    #[test]
    fn self_methods_resolve_to_the_enclosing_impl() {
        let a = analyze(&[(
            "crates/core/src/engine.rs",
            "struct E;\nimpl E {\nfn run(&mut self) { self.helper(); }\n\
             fn helper(&self) { let x = opt.unwrap(); }\n}",
        )]);
        assert!(a.effects_of("core::engine::E::run").contains(Effect::MayPanic));
        let chain = a.chain("core::engine::E::run", Effect::MayPanic).unwrap();
        assert_eq!(chain.len(), 2);
        assert!(chain[1].ends_with("E::helper"));
    }

    #[test]
    fn qualified_calls_resolve_module_heads() {
        let a = analyze(&[
            ("crates/core/src/lib.rs", "pub mod exec;\npub mod engine;"),
            ("crates/core/src/exec.rs", "pub fn fan_out() { panic!(\"boom\"); }"),
            ("crates/core/src/engine.rs", "use crate::exec;\nfn go() { exec::fan_out(); }"),
        ]);
        assert!(a.effects_of("core::engine::go").contains(Effect::MayPanic));
    }

    #[test]
    fn common_method_names_never_make_edges() {
        let a = analyze(&[(
            "crates/core/src/a.rs",
            "struct V;\nimpl V { fn push(&mut self, x: u32) { q.unwrap(); } }\n\
             fn go(items: &mut Vec<u32>) { items.push(1); }",
        )]);
        assert!(a.effects_of("core::a::go").is_empty(), "{:?}", a.all);
    }

    #[test]
    fn unique_uncommon_methods_do_make_edges() {
        let a = analyze(&[(
            "crates/core/src/a.rs",
            "struct Pool;\nimpl Pool { fn drain_replay(&mut self) { net.send(0, b); } }\n\
             fn go(p: &mut Pool) { p.drain_replay(); }",
        )]);
        assert!(a.effects_of("core::a::go").contains(Effect::Sends));
    }

    #[test]
    fn test_functions_contribute_no_effects() {
        let a = analyze(&[(
            "crates/core/src/a.rs",
            "fn clean() {}\n#[cfg(test)] mod t { #[test] fn boom() { x.unwrap(); } }",
        )]);
        assert!(a.effects_of("core::a::clean").is_empty());
        for (fq, set) in &a.all {
            assert!(set.is_empty(), "{fq} has {set}");
        }
    }

    #[test]
    fn recursion_terminates_and_keeps_own_effects() {
        let a = analyze(&[(
            "crates/core/src/a.rs",
            "fn odd(n: u32) -> bool { if n == 0 { record_zero(); false } else { even(n - 1) } }\n\
             fn even(n: u32) -> bool { if n == 0 { true } else { odd(n - 1) } }",
        )]);
        assert!(a.effects_of("core::a::odd").contains(Effect::Telemetry));
        assert!(a.effects_of("core::a::even").contains(Effect::Telemetry));
    }

    #[test]
    fn patterns_resolve_by_suffix() {
        let a = analyze(&[(
            "crates/core/src/engine.rs",
            "struct E;\nimpl E { fn run_epoch(&mut self) {} }",
        )]);
        assert_eq!(a.resolve_pattern("E::run_epoch"), vec!["core::engine::E::run_epoch"]);
        assert_eq!(a.resolve_pattern("core::engine::E::run_epoch").len(), 1);
        assert!(a.resolve_pattern("no_such_fn").is_empty());
    }
}
