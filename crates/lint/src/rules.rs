//! The domain rules, as token-pattern passes over [`LexedFile`]s.
//!
//! Each rule is a heuristic, not a type checker: it trades soundness for
//! zero dependencies. The escape hatch for a deliberate false positive is
//! an inline `// ec-lint: allow(<rule>)` on (or directly above) the line.

use crate::config::RuleConfig;
use crate::diag::Diagnostic;
use crate::effects::UNORDERED_ITER_METHODS;
use crate::lexer::{LexedFile, Tok, TokKind};
use std::collections::BTreeSet;

pub(crate) fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str())
}

pub(crate) fn punct_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).filter(|t| t.kind == TokKind::Punct).map(|t| t.text.as_str())
}

pub(crate) fn is_punct(toks: &[Tok], i: usize, p: &str) -> bool {
    punct_at(toks, i) == Some(p)
}

/// Index of the token matching the `{` at `open` (which must be a `{`),
/// or `toks.len()` when unbalanced.
pub(crate) fn matching_brace(toks: &[Tok], open: usize) -> usize {
    matching_delim(toks, open, "{", "}")
}

/// Index of the token matching the `open_p` delimiter at `open`, or
/// `toks.len()` when unbalanced. Only the given pair is depth-tracked.
pub(crate) fn matching_delim(toks: &[Tok], open: usize, open_p: &str, close_p: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_p {
                depth += 1;
            } else if t.text == close_p {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len()
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]`-annotated item.
///
/// Heuristic: an attribute whose token list mentions `test` but not `not`
/// makes the next braced item test-only.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_punct(toks, i, "#") && is_punct(toks, i + 1, "[") {
            // Collect the attribute's tokens up to its closing `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                match (toks[j].kind, toks[j].text.as_str()) {
                    (TokKind::Punct, "[") => depth += 1,
                    (TokKind::Punct, "]") => depth -= 1,
                    (TokKind::Ident, "test") => saw_test = true,
                    (TokKind::Ident, "not") => saw_not = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test && !saw_not {
                // Skip to the annotated item's body and mark it.
                let mut k = j;
                while k < toks.len() && !is_punct(toks, k, "{") {
                    // A `;` first means a braceless item (e.g. a test-only
                    // `use`): nothing more to mark.
                    if is_punct(toks, k, ";") {
                        break;
                    }
                    k += 1;
                }
                if k < toks.len() && is_punct(toks, k, "{") {
                    let end = matching_brace(toks, k);
                    for flag in &mut mask[i..=end.min(toks.len() - 1)] {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

pub(crate) fn diag(
    rc: &RuleConfig,
    rule: &str,
    path: &str,
    line: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule: rule.into(),
        severity: rc.severity,
        path: path.into(),
        line,
        message,
        note: None,
    }
}

/// `no-wall-clock`: `std::time::{Instant, SystemTime}` are banned outside
/// the sanctioned clock module — deterministic code must not branch on (or
/// report) host time except through `ec_comm::clock::HostTimer`.
pub fn no_wall_clock(rc: &RuleConfig, path: &str, file: &LexedFile) -> Vec<Diagnostic> {
    file.tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime"))
        .map(|t| {
            diag(
                rc,
                "no-wall-clock",
                path,
                t.line,
                format!(
                    "`{}` reads the host clock; measure through \
                     `ec_comm::clock::HostTimer` instead",
                    t.text
                ),
            )
        })
        .collect()
}

/// `no-unseeded-rng`: `thread_rng()` / `from_entropy()` draw from OS
/// entropy, so two runs of the same config would diverge.
pub fn no_unseeded_rng(rc: &RuleConfig, path: &str, file: &LexedFile) -> Vec<Diagnostic> {
    file.tokens
        .iter()
        .filter(|t| {
            t.kind == TokKind::Ident && (t.text == "thread_rng" || t.text == "from_entropy")
        })
        .map(|t| {
            diag(
                rc,
                "no-unseeded-rng",
                path,
                t.line,
                format!(
                    "`{}` is unseeded; use `SmallRng::seed_from_u64` with a config seed",
                    t.text
                ),
            )
        })
        .collect()
}

/// `no-panic-hot-path`: `.unwrap()` / `.expect()` / `panic!` / `todo!` in
/// the per-superstep code paths. A crash mid-superstep would tear down the
/// whole simulated cluster; these paths must surface `Result`s instead.
/// (`assert!` stays allowed: invariant checks on entry are not recovery
/// paths.) Test modules are exempt.
pub fn no_panic_hot_path(rc: &RuleConfig, path: &str, file: &LexedFile) -> Vec<Diagnostic> {
    let toks = &file.tokens;
    let mask = test_mask(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let called = is_punct(toks, i + 1, "(");
        let after_dot = i >= 1 && is_punct(toks, i - 1, ".");
        let after_path = i >= 2 && is_punct(toks, i - 1, ":") && is_punct(toks, i - 2, ":");
        if (name == "unwrap" || name == "expect") && (after_dot || after_path) {
            out.push(diag(
                rc,
                "no-panic-hot-path",
                path,
                toks[i].line,
                format!("`{name}` can panic mid-superstep; propagate a typed error instead"),
            ));
        }
        if (name == "panic" || name == "todo" || name == "unimplemented")
            && is_punct(toks, i + 1, "!")
            && !called
        {
            out.push(diag(
                rc,
                "no-panic-hot-path",
                path,
                toks[i].line,
                format!("`{name}!` aborts the simulated cluster; return an error"),
            ));
        }
    }
    out
}

/// `no-unordered-iteration`: iterating a `HashMap`/`HashSet` visits entries
/// in `RandomState` order — different in every process — so any iteration
/// in a deterministic path makes runs irreproducible. Bindings are tracked
/// by their declared type or initializer; iteration is any of the unordered
/// visiting methods or a `for … in [&]binding` loop. Test modules are
/// exempt (assertions on sets don't feed the simulation).
pub fn no_unordered_iteration(rc: &RuleConfig, path: &str, file: &LexedFile) -> Vec<Diagnostic> {
    let toks = &file.tokens;
    let mask = test_mask(toks);
    let names = hash_typed_names(toks, &mask);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        // `binding.iter()` and friends.
        if names.contains(name) && is_punct(toks, i + 1, ".") {
            if let Some(method) = ident_at(toks, i + 2) {
                if UNORDERED_ITER_METHODS.contains(&method) && is_punct(toks, i + 3, "(") {
                    out.push(diag(
                        rc,
                        "no-unordered-iteration",
                        path,
                        toks[i + 2].line,
                        format!(
                            "`{name}.{method}()` walks a hash container in process-random \
                             order; use a `BTreeMap`/`BTreeSet` or sort the keys first"
                        ),
                    ));
                }
            }
        }
        // `for pat in [&]binding {` — consuming or borrowing, both unordered.
        if name == "for" {
            let limit = (i + 16).min(toks.len());
            let mut j = i + 1;
            while j < limit && ident_at(toks, j) != Some("in") && !is_punct(toks, j, "{") {
                j += 1;
            }
            if j < limit && ident_at(toks, j) == Some("in") {
                let mut k = j + 1;
                while k < toks.len() && (is_punct(toks, k, "&") || ident_at(toks, k) == Some("mut"))
                {
                    k += 1;
                }
                if let Some(target) = ident_at(toks, k) {
                    if names.contains(target) && is_punct(toks, k + 1, "{") {
                        out.push(diag(
                            rc,
                            "no-unordered-iteration",
                            path,
                            toks[k].line,
                            format!(
                                "`for … in {target}` visits a hash container in \
                                 process-random order; collect and sort, or use a BTree \
                                 container"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Binding names declared with a `HashMap`/`HashSet` type or initializer:
/// `let [mut] NAME = HashMap::new()`, `NAME: HashMap<…>` (let, field, or
/// parameter), through arbitrary `std::collections::` paths and wrapping
/// generics.
fn hash_typed_names(toks: &[Tok], mask: &[bool]) -> BTreeSet<String> {
    typed_names(toks, mask, &["HashMap", "HashSet"])
}

/// Binding names declared with any of `types` as their type or initializer
/// (same backwalk heuristic as [`hash_typed_names`]).
pub(crate) fn typed_names(toks: &[Tok], mask: &[bool], types: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident || !types.contains(&toks[i].text.as_str()) {
            continue;
        }
        // Walk back over the type/path context to the `=` or `:` that ties
        // this type to a binding name.
        let mut k = i;
        let mut steps = 0;
        while k > 0 && steps < 24 {
            k -= 1;
            steps += 1;
            match (toks[k].kind, toks[k].text.as_str()) {
                (TokKind::Punct, ":") if k > 0 && is_punct(toks, k - 1, ":") => k -= 1, // `::`
                (TokKind::Punct, ":") => {
                    // Type annotation: `NAME: …HashMap…`.
                    if let Some(name) = ident_at(toks, k - 1) {
                        names.insert(name.to_string());
                    }
                    break;
                }
                (TokKind::Punct, "=") => {
                    // Initializer: `let [mut] NAME = …HashMap…`.
                    if let Some(name) = ident_at(toks, k - 1) {
                        names.insert(name.to_string());
                    }
                    break;
                }
                (TokKind::Ident, _)
                | (TokKind::Lifetime, _)
                | (TokKind::Punct, "<")
                | (TokKind::Punct, ">")
                | (TokKind::Punct, "&") => {}
                _ => break,
            }
        }
    }
    names
}

/// `wire-hygiene`: every type in the wire-format files that derives
/// `Serialize` must also derive `Deserialize` and be exercised by a test
/// whose name contains `round_trip`. Runs over the rule's whole file set at
/// once so a type and its round-trip test may live in different files.
pub fn wire_hygiene(rc: &RuleConfig, files: &[(String, LexedFile)]) -> Vec<Diagnostic> {
    struct WireType {
        path: String,
        line: usize,
        name: String,
        has_deserialize: bool,
    }
    let mut types: Vec<WireType> = Vec::new();
    let mut round_trip_idents: BTreeSet<String> = BTreeSet::new();

    for (path, file) in files {
        let toks = &file.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            // #[derive(...)] … struct/enum NAME
            if is_punct(toks, i, "#")
                && is_punct(toks, i + 1, "[")
                && ident_at(toks, i + 2) == Some("derive")
                && is_punct(toks, i + 3, "(")
            {
                let line = toks[i].line;
                let mut j = i + 4;
                let mut depth = 1usize;
                let mut derives: BTreeSet<String> = BTreeSet::new();
                while j < toks.len() && depth > 0 {
                    match (toks[j].kind, toks[j].text.as_str()) {
                        (TokKind::Punct, "(") => depth += 1,
                        (TokKind::Punct, ")") => depth -= 1,
                        (TokKind::Ident, id) => {
                            derives.insert(id.to_string());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                // Skip trailing `]`, further attributes, and visibility
                // tokens up to the item keyword.
                let mut k = j;
                let mut name = None;
                let mut guard = 0;
                while k < toks.len() && guard < 32 {
                    match ident_at(toks, k) {
                        Some("struct") | Some("enum") | Some("union") => {
                            name = ident_at(toks, k + 1).map(str::to_string);
                            break;
                        }
                        _ => {
                            k += 1;
                            guard += 1;
                        }
                    }
                }
                if let Some(name) = name {
                    if derives.contains("Serialize") {
                        types.push(WireType {
                            path: path.clone(),
                            line,
                            name,
                            has_deserialize: derives.contains("Deserialize"),
                        });
                    }
                }
                i = j;
                continue;
            }
            // fn …round_trip… { … } — collect every identifier inside.
            if ident_at(toks, i) == Some("fn") {
                if let Some(fn_name) = ident_at(toks, i + 1) {
                    if fn_name.contains("round_trip") {
                        let mut k = i + 2;
                        while k < toks.len() && !is_punct(toks, k, "{") {
                            k += 1;
                        }
                        if k < toks.len() {
                            let end = matching_brace(toks, k);
                            for t in &toks[k..end.min(toks.len())] {
                                if t.kind == TokKind::Ident {
                                    round_trip_idents.insert(t.text.clone());
                                }
                            }
                            i = end;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
    }

    let mut out = Vec::new();
    for t in &types {
        if !t.has_deserialize {
            out.push(diag(
                rc,
                "wire-hygiene",
                &t.path,
                t.line,
                format!(
                    "`{}` derives Serialize but not Deserialize — wire types must decode \
                     everything they encode",
                    t.name
                ),
            ));
        }
        if !round_trip_idents.contains(&t.name) {
            out.push(diag(
                rc,
                "wire-hygiene",
                &t.path,
                t.line,
                format!("`{}` is a wire type but appears in no `*round_trip*` test", t.name),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::lexer::lex;

    fn rc() -> RuleConfig {
        RuleConfig {
            severity: Severity::Error,
            include: vec!["".into()],
            exclude: vec![],
            lock: None,
            entry_points: Vec::new(),
            sinks: Vec::new(),
        }
    }

    #[test]
    fn wall_clock_flags_instant_and_systemtime() {
        let f = lex("let t = std::time::Instant::now();\nlet s = SystemTime::now();");
        let d = no_wall_clock(&rc(), "x.rs", &f);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn unordered_iteration_tracks_let_bindings() {
        let f =
            lex("fn f() { let mut m = std::collections::HashMap::new(); for (k, v) in &m { } }");
        let d = no_unordered_iteration(&rc(), "x.rs", &f);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn unordered_iteration_tracks_typed_fields() {
        let src = "struct S { cache: HashMap<u32, f64> }\n\
                   impl S { fn go(&self) { let _: Vec<_> = self.cache.keys().collect(); } }";
        let d = no_unordered_iteration(&rc(), "x.rs", &lex(src));
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn unordered_iteration_ignores_lookups_and_sorted_reads() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(no_unordered_iteration(&rc(), "x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn unordered_iteration_skips_tests_and_other_types() {
        let src = "#[cfg(test)] mod tests { fn f() { let m = HashMap::new(); for k in &m {} } }\n\
                   fn g() { let v = Vec::new(); for x in &v {} }";
        assert!(no_unordered_iteration(&rc(), "x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn panic_rule_flags_unwrap_expect_and_macros() {
        let src = "fn f(x: Option<u32>) -> u32 { let y = x.unwrap(); panic!(\"no\"); y }";
        let d = no_panic_hot_path(&rc(), "x.rs", &lex(src));
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn panic_rule_allows_tests_and_asserts() {
        let src = "fn f() { assert!(true, \"fine\"); }\n\
                   #[cfg(test)] mod tests { #[test] fn t() { None::<u32>.unwrap(); } }";
        assert!(no_panic_hot_path(&rc(), "x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn wire_hygiene_requires_deserialize_and_round_trip() {
        let src = "#[derive(Clone, Serialize)] struct OneWay { a: u32 }\n\
                   #[derive(Serialize, Deserialize)] struct Round { b: u32 }\n\
                   #[cfg(test)] mod tests { #[test] fn round_trips() { let _ = Round { b: 1 }; } }";
        let d = wire_hygiene(&rc(), &[("w.rs".into(), lex(src))]);
        // OneWay: missing Deserialize AND missing round-trip → 2 findings.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.message.contains("OneWay")));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = lex("#[cfg(not(test))] fn prod() { x.unwrap(); }");
        assert_eq!(no_panic_hot_path(&rc(), "x.rs", &f).len(), 1);
    }
}
