//! `lint.toml` — which rules run where.
//!
//! The parser is a hand-rolled subset of TOML (the offline build has no
//! `toml` crate): `[section]` headers, `key = "string"`, and
//! `key = ["a", "b"]` single-line string arrays. Comments start with `#`.
//!
//! ```toml
//! [no-wall-clock]
//! severity = "error"
//! include = ["crates"]
//! exclude = ["crates/bench", "crates/comm/src/clock.rs"]
//! ```
//!
//! `include`/`exclude` entries are workspace-relative path prefixes,
//! matched at component boundaries (`crates/core` matches
//! `crates/core/src/engine.rs`, not `crates/core2`). A rule only runs on
//! files under some `include` prefix and under no `exclude` prefix.

use crate::diag::Severity;
use std::collections::BTreeMap;

/// Keys a rule section may set.
const KNOWN_KEYS: &[&str] = &["severity", "include", "exclude", "lock", "entry_points", "sinks"];

/// Where one rule applies, and how hard it fails.
#[derive(Clone, Debug)]
pub struct RuleConfig {
    /// Diagnostics from this rule carry this severity.
    pub severity: Severity,
    /// Path prefixes the rule runs on.
    pub include: Vec<String>,
    /// Path prefixes carved out of `include`.
    pub exclude: Vec<String>,
    /// Workspace-relative lockfile path (only `wire-schema-lock` uses it).
    pub lock: Option<String>,
    /// Function patterns (fully-qualified or `::`-suffixes) the
    /// reachability analysis starts from (`no-panic-hot-path`).
    pub entry_points: Vec<String>,
    /// Function patterns whose transitive inputs must stay ordered
    /// (`determinism-taint`).
    pub sinks: Vec<String>,
}

impl RuleConfig {
    /// Whether `rel_path` (workspace-relative, `/`-separated) is in scope.
    pub fn applies_to(&self, rel_path: &str) -> bool {
        self.include.iter().any(|p| prefix_match(p, rel_path)) && !self.excludes(rel_path)
    }

    /// Whether `rel_path` is carved out by an `exclude` prefix. The
    /// reachability rules use this alone: their scope is the call graph,
    /// not the `include` list (which stays as the token-scan fallback).
    pub fn excludes(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| prefix_match(p, rel_path))
    }
}

fn prefix_match(prefix: &str, path: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

/// The whole config: rule name → scope. `BTreeMap` so rules run (and
/// report) in a stable order.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Per-rule scopes, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl LintConfig {
    /// Parses the `lint.toml` subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rules: BTreeMap<String, RuleConfig> = BTreeMap::new();
        let mut current: Option<String> = None;
        // Fold multi-line arrays into one logical line so `include = [`
        // followed by indented entries parses like its single-line form.
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some((_, buf)) = logical.last_mut() {
                if buf.contains('=') && buf.matches('[').count() > buf.matches(']').count() {
                    buf.push(' ');
                    buf.push_str(line);
                    continue;
                }
            }
            logical.push((idx, line.to_string()));
        }
        for (idx, line) in &logical {
            let line = line.as_str();
            let err = |msg: String| format!("lint.toml:{}: {msg}", idx + 1);
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if name.is_empty() {
                    return Err(err("empty section name".into()));
                }
                if !crate::KNOWN_RULES.contains(&name) {
                    return Err(err(format!(
                        "unknown rule [{name}]{}",
                        did_you_mean(name, crate::KNOWN_RULES)
                    )));
                }
                rules.entry(name.to_string()).or_insert(RuleConfig {
                    severity: Severity::Error,
                    include: Vec::new(),
                    exclude: Vec::new(),
                    lock: None,
                    entry_points: Vec::new(),
                    sinks: Vec::new(),
                });
                current = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("expected `key = value`, got {line:?}")));
            };
            let section = current.as_ref().ok_or_else(|| err("key before any [section]".into()))?;
            let rule = rules.get_mut(section).ok_or_else(|| err("unknown section".into()))?;
            match key.trim() {
                "severity" => {
                    rule.severity = Severity::parse(&parse_string(value.trim()).map_err(&err)?)
                        .map_err(&err)?;
                }
                "include" => rule.include = parse_string_array(value.trim()).map_err(&err)?,
                "exclude" => rule.exclude = parse_string_array(value.trim()).map_err(&err)?,
                "lock" => rule.lock = Some(parse_string(value.trim()).map_err(&err)?),
                "entry_points" => {
                    rule.entry_points = parse_string_array(value.trim()).map_err(&err)?;
                }
                "sinks" => rule.sinks = parse_string_array(value.trim()).map_err(&err)?,
                other => {
                    return Err(err(format!(
                        "unknown key {other:?}{}",
                        did_you_mean(other, KNOWN_KEYS)
                    )));
                }
            }
        }
        for (name, rule) in &rules {
            // Graph-scoped rules are rooted at `sinks` patterns rather than
            // path prefixes; everything else needs an include list.
            if rule.include.is_empty() && rule.sinks.is_empty() {
                return Err(format!("rule [{name}] has no include paths"));
            }
        }
        Ok(Self { rules })
    }
}

/// `; did you mean "…"?` when some candidate is within edit distance 3 of
/// `got` (the closest one wins; ties break toward the first candidate).
fn did_you_mean(got: &str, candidates: &[&str]) -> String {
    let mut best: Option<(usize, &str)> = None;
    for c in candidates {
        let d = edit_distance(got, c);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    match best {
        Some((d, c)) if d <= 3 => format!("; did you mean {c:?}?"),
        _ => String::new(),
    }
}

/// Levenshtein distance, two-row dynamic program.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Cuts a trailing `# comment` — safe because values in this subset never
/// contain `#` inside strings (paths and severities).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got {v:?}"))
}

fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [\"a\", \"b\"], got {v:?}"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|item| !item.is_empty()) // tolerate a trailing comma
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let cfg = LintConfig::parse(
            r#"
# top comment
[no-wall-clock]
severity = "error"
include = ["crates"]           # trailing comment
exclude = ["crates/bench", "crates/comm/src/clock.rs"]

[no-unseeded-rng]
severity = "warn"
include = ["crates", "tests"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.rules.len(), 2);
        let wc = &cfg.rules["no-wall-clock"];
        assert_eq!(wc.severity, Severity::Error);
        assert_eq!(wc.exclude.len(), 2);
        assert_eq!(cfg.rules["no-unseeded-rng"].severity, Severity::Warn);
    }

    #[test]
    fn parses_multi_line_arrays_with_trailing_commas() {
        let cfg = LintConfig::parse(
            r#"
[no-unordered-iteration]
severity = "error"
include = [
    "crates/core",   # comment on an entry
    "crates/comm",
]
"#,
        )
        .unwrap();
        let rule = &cfg.rules["no-unordered-iteration"];
        assert_eq!(rule.include, vec!["crates/core".to_string(), "crates/comm".to_string()]);
    }

    #[test]
    fn prefix_matching_respects_component_boundaries() {
        let rule = RuleConfig {
            severity: Severity::Error,
            include: vec!["crates/core".into()],
            exclude: vec!["crates/core/src/bin".into()],
            lock: None,
            entry_points: Vec::new(),
            sinks: Vec::new(),
        };
        assert!(rule.applies_to("crates/core/src/engine.rs"));
        assert!(!rule.applies_to("crates/core2/src/engine.rs"));
        assert!(!rule.applies_to("crates/core/src/bin/ecgraph.rs"));
    }

    #[test]
    fn exact_file_includes_work() {
        let rule = RuleConfig {
            severity: Severity::Error,
            include: vec!["crates/comm/src/ps.rs".into()],
            exclude: vec![],
            lock: None,
            entry_points: Vec::new(),
            sinks: Vec::new(),
        };
        assert!(rule.applies_to("crates/comm/src/ps.rs"));
        assert!(!rule.applies_to("crates/comm/src/network.rs"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(LintConfig::parse("severity = \"error\"").is_err(), "key before section");
        assert!(LintConfig::parse("[no-wall-clock]\nseverity error").is_err(), "missing =");
        assert!(LintConfig::parse("[no-wall-clock]\nseverity = \"loud\"").is_err(), "bad severity");
        assert!(LintConfig::parse("[no-wall-clock]\nseverity = \"warn\"").is_err(), "no includes");
    }

    #[test]
    fn unknown_sections_are_hard_errors_with_suggestions() {
        let err = LintConfig::parse("[no-wall-clok]\ninclude = [\"crates\"]").unwrap_err();
        assert!(err.contains("unknown rule [no-wall-clok]"), "{err}");
        assert!(err.contains("did you mean \"no-wall-clock\"?"), "{err}");
        // Far from every known rule: no suggestion, still an error.
        let err = LintConfig::parse("[totally-made-up-pass-name-xyz]").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn unknown_keys_are_hard_errors_with_suggestions() {
        let err = LintConfig::parse("[no-wall-clock]\nincldue = [\"crates\"]").unwrap_err();
        assert!(err.contains("unknown key \"incldue\""), "{err}");
        assert!(err.contains("did you mean \"include\"?"), "{err}");
    }

    #[test]
    fn entry_points_and_sinks_parse() {
        let cfg = LintConfig::parse(
            "[no-panic-hot-path]\ninclude = [\"crates\"]\n\
             entry_points = [\"DistributedEngine::run_epoch\"]\n\
             [determinism-taint]\ninclude = [\"crates\"]\n\
             sinks = [\"RunResult::to_json\", \"put_matrix\"]",
        )
        .unwrap();
        assert_eq!(
            cfg.rules["no-panic-hot-path"].entry_points,
            vec!["DistributedEngine::run_epoch".to_string()]
        );
        assert_eq!(cfg.rules["determinism-taint"].sinks.len(), 2);
    }
}
