//! Per-closure capture and write sets: the intraprocedural def-use layer
//! under the concurrency rules in [`crate::conc`].
//!
//! The lattice is deliberately small. For a token range (a closure body or
//! a function body) we compute three name sets — *parameters* (bound by
//! the `|…|` or `fn(…)` pattern), *locals* (`let`/`for`/`if let`/
//! `while let` bindings plus nested-closure parameters), and *band
//! bindings* (names bound from `split_at_mut`-family products, the
//! sanctioned disjoint output slices) — and one fact list: the *write
//! sites*, each resolved back to the root identifier of its place
//! expression (`state.jobs.push_back(j)` writes through `state`;
//! `*slot = v` writes through `slot`; `out[i].w = v` writes through
//! `out`). A write whose root is in none of the three sets mutates
//! *captured shared state*: inside a pool-dispatched closure that is a
//! data race candidate, and in a helper function it marks the helper as a
//! shared writer for the interprocedural half of `disjoint-band-writes`.
//!
//! Mutex-guarded writes wash out naturally: the guard is a `let` local
//! (`let mut state = lock(&self.state); state.pending -= 1`), so the root
//! lands in the local set. Atomics are deliberately *not* treated as
//! writes here — `store`/`fetch_*` are synchronization, and every such
//! site is separately forced through `atomics-ordering-audit`'s
//! justification-and-lockfile discipline.

use crate::lexer::{Tok, TokKind};
use crate::rules::{ident_at, is_punct, matching_delim, punct_at};
use std::collections::BTreeSet;

/// Methods that mutate their receiver in place. Kept tight: a name listed
/// here turns `root.name(…)` into a write through `root`, so ubiquitous
/// read-style names must stay out. Atomic RMW names are excluded on
/// purpose (see the module docs).
pub(crate) const MUTATING_METHODS: &[&str] = &[
    "append",
    "clear",
    "drain",
    "extend",
    "extend_from_slice",
    "fill",
    "get_or_insert",
    "get_or_insert_with",
    "insert",
    "pop",
    "pop_front",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "record",
    "remove",
    "replace",
    "resize",
    "retain",
    "send",
    "set",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split_off",
    "swap",
    "truncate",
];

/// Slice-splitting methods whose products are the disjoint per-band
/// `&mut` views workers are allowed to write through.
pub(crate) const BAND_SOURCES: &[&str] =
    &["chunks_exact_mut", "chunks_mut", "split_at_mut", "split_first_mut", "split_last_mut"];

/// Pattern keywords and binding modes that are not binding names.
const PATTERN_NOISE: &[&str] = &["mut", "ref", "move", "box", "dyn", "impl", "_"];

/// One write through a place expression, resolved to its root identifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteSite {
    /// Root identifier of the written place (`state` in `state.jobs.push_back(j)`).
    pub root: String,
    /// 1-based source line of the write.
    pub line: usize,
    /// Short rendering of the write for diagnostics (`` `state.pending -= …` ``).
    pub what: String,
}

/// Whether `name` reads as a pattern binding: lowercase-initial (enum
/// constructors and types in patterns are uppercase-initial) and not a
/// binding-mode keyword.
fn is_binding_name(name: &str) -> bool {
    !PATTERN_NOISE.contains(&name)
        && name.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
}

/// Collects the names bound by a parameter list in `[start, end)` — the
/// token range between a closure's `|…|` bars or a signature's parens.
/// Each comma-separated chunk contributes the pattern-side idents (before
/// the chunk's top-level `:` when typed, the whole chunk otherwise), so
/// type names never leak into the set. `self` counts: a method's receiver
/// is a parameter.
pub fn param_names(toks: &[Tok], (start, end): (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut depth = 0i32;
    let mut in_type = false;
    for i in start..end.min(toks.len()) {
        match punct_at(toks, i) {
            Some("(" | "[" | "{" | "<") => depth += 1,
            Some(")" | "]" | "}" | ">") => depth -= 1,
            Some(",") if depth == 0 => in_type = false,
            Some(":") if depth == 0 => in_type = true,
            _ => {}
        }
        if !in_type && toks[i].kind == TokKind::Ident {
            let name = toks[i].text.as_str();
            if name == "self" || is_binding_name(name) {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// Collects every name locally bound inside `[start, end)`: `let`-pattern
/// bindings (covers `if let` / `while let`), `for`-pattern bindings, and
/// the parameters of nested closures. Match-arm bindings are not modeled;
/// missing one only makes the analysis *stricter*, never blind.
pub fn local_names(toks: &[Tok], (start, end): (usize, usize)) -> BTreeSet<String> {
    let end = end.min(toks.len());
    let mut out = BTreeSet::new();
    let mut i = start;
    while i < end {
        if toks[i].kind == TokKind::Ident {
            match toks[i].text.as_str() {
                "let" => {
                    // Pattern runs to the binding's `:` type or `=` init.
                    let mut j = i + 1;
                    while j < end && !matches!(punct_at(toks, j), Some(":" | "=" | ";")) {
                        collect_binding(toks, j, &mut out);
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                "for" => {
                    let mut j = i + 1;
                    while j < end && ident_at(toks, j) != Some("in") {
                        collect_binding(toks, j, &mut out);
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                "move" if is_punct(toks, i + 1, "|") => {
                    i = collect_closure_params(toks, i + 1, end, &mut out);
                    continue;
                }
                _ => {}
            }
        }
        // A nested closure's own parameters are locals of the outer body.
        if is_punct(toks, i, "|")
            && i > 0
            && matches!(punct_at(toks, i - 1), Some("(" | "," | "=" | "{" | "&"))
        {
            i = collect_closure_params(toks, i, end, &mut out);
            continue;
        }
        i += 1;
    }
    out
}

fn collect_binding(toks: &[Tok], i: usize, out: &mut BTreeSet<String>) {
    if toks[i].kind == TokKind::Ident && is_binding_name(&toks[i].text) {
        out.insert(toks[i].text.clone());
    }
}

/// From the opening `|` at `bar`, collects the closure's parameter names
/// and returns the index just past the closing `|` (or `end`).
fn collect_closure_params(
    toks: &[Tok],
    bar: usize,
    end: usize,
    out: &mut BTreeSet<String>,
) -> usize {
    let mut j = bar + 1;
    while j < end && !is_punct(toks, j, "|") {
        collect_binding(toks, j, out);
        j += 1;
    }
    j + 1
}

/// Names in `[start, end)` bound from a [`BAND_SOURCES`] call — either
/// directly (`let (band, tail) = rest.split_at_mut(n)`) or by re-binding a
/// band name (`rest = tail`). Two propagation passes close the
/// `rest = tail` chains that the band-splitting loop idiom produces.
pub fn band_bindings(toks: &[Tok], (start, end): (usize, usize)) -> BTreeSet<String> {
    let end = end.min(toks.len());
    let mut out = BTreeSet::new();
    for i in start..end {
        if toks[i].kind != TokKind::Ident
            || !BAND_SOURCES.contains(&toks[i].text.as_str())
            || i == 0
            || !is_punct(toks, i - 1, ".")
            || !is_punct(toks, i + 1, "(")
        {
            continue;
        }
        // Walk back to the statement start; a `let` there makes every
        // pattern ident a band binding.
        let mut j = i;
        while j > start && !matches!(punct_at(toks, j - 1), Some(";" | "{" | "}")) {
            j -= 1;
        }
        if ident_at(toks, j) != Some("let") {
            continue;
        }
        let mut k = j + 1;
        while k < i && !is_punct(toks, k, "=") {
            collect_binding(toks, k, &mut out);
            k += 1;
        }
    }
    // Close simple re-binding chains: `x = band_name;` makes `x` a band.
    for _ in 0..2 {
        for i in start..end {
            if !is_punct(toks, i, "=")
                || matches!(punct_at(toks, i + 1), Some("=" | ">"))
                || (i > 0 && matches!(punct_at(toks, i - 1), Some("=" | "<" | ">" | "!")))
            {
                continue;
            }
            let (Some(lhs), Some(rhs)) = (ident_at(toks, i.wrapping_sub(1)), ident_at(toks, i + 1))
            else {
                continue;
            };
            if is_punct(toks, i + 2, ";") && out.contains(rhs) && is_binding_name(lhs) {
                out.insert(lhs.to_string());
            }
        }
    }
    out
}

/// Finds every write in `[start, end)` and resolves each to the root
/// identifier of its place expression. Covered forms: plain assignment
/// (`x = v`, `x.f = v`, `x[i] = v`, `*x = v`), compound assignment
/// (`x += v` and friends), and in-place [`MUTATING_METHODS`] calls
/// (`x.push(v)`). `let` initializers are declarations, not writes.
pub fn write_sites(toks: &[Tok], (start, end): (usize, usize)) -> Vec<WriteSite> {
    let end = end.min(toks.len());
    let mut out = Vec::new();
    for i in start..end {
        // In-place mutating method call: `<place>.name(…)`.
        if toks[i].kind == TokKind::Ident
            && MUTATING_METHODS.contains(&toks[i].text.as_str())
            && is_punct(toks, i + 1, "(")
            && i >= 1
            && is_punct(toks, i - 1, ".")
        {
            if let Some(root) = place_root(toks, i.wrapping_sub(2), start) {
                out.push(WriteSite {
                    root: toks[root].text.clone(),
                    line: toks[i].line,
                    what: format!("`{}.{}(…)`", render_place(toks, root, i - 1), toks[i].text),
                });
            }
            continue;
        }
        if !is_punct(toks, i, "=") {
            continue;
        }
        // Rule out `==`, `=>`, `<=`, `>=`, `!=`, and the tail of `==`.
        if matches!(punct_at(toks, i + 1), Some("=" | ">")) {
            continue;
        }
        let prev = if i > start { punct_at(toks, i - 1) } else { None };
        if matches!(prev, Some("=" | "<" | ">" | "!" | ".")) {
            continue;
        }
        let compound = matches!(prev, Some("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"));
        let target_end = if compound { i - 2 } else { i - 1 };
        let Some(root) = place_root(toks, target_end, start) else { continue };
        // `let x = …` / `for … =` declare; they are not writes (and the
        // binding is already in the local set).
        if is_declaration(toks, root, start) {
            continue;
        }
        let op =
            if compound { format!("{}=", punct_at(toks, i - 1).unwrap_or("")) } else { "=".into() };
        out.push(WriteSite {
            root: toks[root].text.clone(),
            line: toks[target_end.min(toks.len() - 1)].line,
            what: format!("`{} {op} …`", render_place(toks, root, target_end + 1)),
        });
    }
    out
}

/// Walks a place expression backwards from its last token to the root
/// identifier: through `.field` chains, `[index]` groups, and `::` paths.
/// Anything else — a call result, a tuple pattern, a parenthesized
/// receiver — bails with `None`: those are not simple writes this layer
/// models, and bailing under-approximates (never false-flags).
fn place_root(toks: &[Tok], mut j: usize, lo: usize) -> Option<usize> {
    loop {
        if j >= toks.len() || j < lo {
            return None;
        }
        if is_punct(toks, j, "]") {
            // Jump over the `[…]` index group.
            let mut depth = 0i32;
            let mut k = j;
            loop {
                match punct_at(toks, k) {
                    Some("]") => depth += 1,
                    Some("[") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == lo {
                    return None;
                }
                k -= 1;
            }
            if k <= lo {
                return None;
            }
            j = k - 1;
            continue;
        }
        if toks[j].kind == TokKind::Ident {
            if j >= 1 && is_punct(toks, j - 1, ".") {
                if j < 2 {
                    return None;
                }
                j -= 2;
                continue;
            }
            if j >= 2 && is_punct(toks, j - 1, ":") && is_punct(toks, j - 2, ":") {
                if j < 3 {
                    return None;
                }
                j -= 3;
                continue;
            }
            return Some(j);
        }
        return None;
    }
}

/// Whether the place rooted at `root` is being declared (directly preceded
/// by `let` / `mut` / `ref`, modulo `*`/`&` sigils).
fn is_declaration(toks: &[Tok], root: usize, lo: usize) -> bool {
    let mut k = root;
    while k > lo {
        let before = k - 1;
        if matches!(punct_at(toks, before), Some("*" | "&")) {
            k = before;
            continue;
        }
        return matches!(ident_at(toks, before), Some("let" | "mut" | "ref"));
    }
    false
}

/// Renders the tokens of `[from, to)` for a diagnostic, compacting
/// whitespace the way the token stream sees it.
fn render_place(toks: &[Tok], from: usize, to: usize) -> String {
    let mut s = String::new();
    for t in &toks[from..to.min(toks.len())] {
        match t.kind {
            TokKind::Punct => s.push_str(&t.text),
            _ => {
                if !s.is_empty()
                    && s.chars().last().is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    s.push(' ');
                }
                s.push_str(&t.text);
            }
        }
    }
    s
}

/// Finds the first closure literal in `[from, until)` and returns its
/// parameter-list range (between the bars) and body range (after the
/// closing bar). Zero-parameter closures (`||`) work because the
/// parameter range is simply empty.
pub fn closure_in(
    toks: &[Tok],
    from: usize,
    until: usize,
) -> Option<((usize, usize), (usize, usize))> {
    let until = until.min(toks.len());
    let mut j = from;
    while j < until {
        if is_punct(toks, j, "|") {
            let mut k = j + 1;
            while k < until && !is_punct(toks, k, "|") {
                k += 1;
            }
            if k >= until {
                return None;
            }
            // A `{`-braced body narrows to the brace interior; expression
            // bodies run to the caller-supplied boundary.
            let body_end = if is_punct(toks, k + 1, "{") {
                matching_delim(toks, k + 1, "{", "}")
            } else {
                until
            };
            return Some(((j + 1, k), (k + 1, body_end.min(until))));
        }
        j += 1;
    }
    None
}

/// Locates the parameter-list token range of the `fn` declared at
/// `fn_line` whose body interior starts at `body_start`. Walks forward
/// from the `fn` keyword over the name and an optional generic list
/// (angle-bracket matching is `->`-tolerant) to the signature parens.
pub fn fn_param_range(toks: &[Tok], fn_line: usize, body_start: usize) -> Option<(usize, usize)> {
    let mut i = body_start.min(toks.len());
    // Find the `fn` keyword on the declaration line, scanning back from
    // the body.
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && toks[i].line == fn_line {
            break;
        }
        if toks[i].line < fn_line {
            return None;
        }
    }
    let mut j = i + 2; // past `fn name`
    if is_punct(toks, j, "<") {
        j = crate::sem::angle_close(toks, j) + 1;
    }
    if !is_punct(toks, j, "(") {
        return None;
    }
    Some((j + 1, matching_delim(toks, j, "(", ")")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn set(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn param_names_take_patterns_not_types() {
        let f = lex("out: &mut [f32], (i, x): (usize, Vec<Band>), n: usize");
        let all = (0, f.tokens.len());
        assert_eq!(param_names(&f.tokens, all), set(&["out", "i", "x", "n"]));
    }

    #[test]
    fn param_names_keep_self() {
        let f = lex("&mut self, job: Job");
        assert_eq!(param_names(&f.tokens, (0, f.tokens.len())), set(&["self", "job"]));
    }

    #[test]
    fn local_names_cover_let_for_and_nested_closures() {
        let f = lex("let (a, b) = pair(); for (i, slot) in band.iter_mut().enumerate() { }\n\
             if let Some(x) = opt { } items.map(|it| it + 1); move || other;");
        let got = local_names(&f.tokens, (0, f.tokens.len()));
        for name in ["a", "b", "i", "slot", "x", "it"] {
            assert!(got.contains(name), "{name} missing from {got:?}");
        }
        assert!(!got.contains("band"), "iterated source is not a binding");
    }

    #[test]
    fn band_bindings_track_split_products_and_rebinds() {
        let f = lex("let mut rest = out; let (band, tail) = rest.split_at_mut(n); rest = tail;\n\
             let other = q.len();");
        let got = band_bindings(&f.tokens, (0, f.tokens.len()));
        assert_eq!(got, set(&["band", "tail", "rest"]));
    }

    #[test]
    fn write_sites_resolve_roots_through_fields_indexes_and_derefs() {
        let f = lex("state.pending -= 1; *slot = Some(v); out[i * c + j] = 0.0;\n\
             shared_log.push(w); let fresh = 1; total == limit; x <= y;\n\
             lock(&self.state).closed = true;");
        let got = write_sites(&f.tokens, (0, f.tokens.len()));
        let roots: Vec<&str> = got.iter().map(|w| w.root.as_str()).collect();
        assert_eq!(roots, ["state", "slot", "out", "shared_log"], "{got:?}");
    }

    #[test]
    fn write_sites_skip_declarations_and_comparisons() {
        let f = lex("let mut acc = 0.0; acc += x; if acc >= cap { acc = cap; }");
        let got = write_sites(&f.tokens, (0, f.tokens.len()));
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|w| w.root == "acc"));
    }

    #[test]
    fn closure_in_finds_params_and_braced_bodies() {
        let f = lex("tasks.push(Box::new(move || { body(start, band); })); after()");
        let (params, body) = closure_in(&f.tokens, 0, f.tokens.len()).expect("closure");
        assert_eq!(params.0, params.1, "zero-arg closure");
        let rendered = render_place(&f.tokens, body.0, body.1);
        assert!(rendered.contains("body"), "{rendered}");
        assert!(!rendered.contains("after"), "body must stop at its brace: {rendered}");
    }

    #[test]
    fn fn_param_range_skips_generics() {
        let f =
            lex("pub fn run_workers<R: Send>(pool: &WorkerPool, n: usize) -> Vec<R> { body() }");
        let body_start = f.tokens.iter().position(|t| t.text == "body").unwrap();
        let range = fn_param_range(&f.tokens, 1, body_start).expect("range");
        assert_eq!(param_names(&f.tokens, range), set(&["pool", "n"]));
    }
}
