//! A recursive-descent item/expression parser over the lexed token stream.
//!
//! The lexer ([`crate::lexer`]) guarantees we never misread *what is code*;
//! this module recovers enough structure from that code for the semantic
//! rules: the item tree (functions, structs, enums, impls, modules, traits,
//! use declarations, macro invocations), struct/enum field lists with
//! rendered type text, expanded use-trees, and `#[derive(...)]` /
//! test-region attributes. Function bodies are kept as token ranges — the
//! rules that look inside them (closure hygiene, reduce chains) scan
//! tokens directly, which is all the fidelity they need.
//!
//! The parser is tolerant: unknown constructs become [`ItemKind::Other`]
//! items one token wide, so item spans always tile the file (the
//! round-trip property `crates/lint/tests/parser_roundtrip.rs` checks).
//! It only fails on structurally broken input (an unclosed delimiter).

use crate::lexer::{LexedFile, Tok, TokKind};

/// What kind of item a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free or associated).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `impl` block (children are its associated items).
    Impl,
    /// `mod` with a body (children are its items).
    Mod,
    /// `trait` definition.
    Trait,
    /// `use` declaration (see [`Item::imports`]).
    Use,
    /// A macro *invocation* in item position (`name! { … }`).
    MacroInvocation,
    /// A `macro_rules!` *definition* (body deliberately not item-parsed).
    MacroDef,
    /// `const` / `static` / `type` / `extern crate` / anything else the
    /// parser recognizes enough to skip as a unit.
    Other,
}

/// One field of a struct or enum-struct variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name; `None` for tuple positions.
    pub name: Option<String>,
    /// Canonically rendered type text (see [`render_tokens`]).
    pub ty: String,
    /// 1-based source line.
    pub line: usize,
}

/// One enum variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Payload fields (empty for unit variants).
    pub fields: Vec<Field>,
    /// True for `Name(T, U)`, false for `Name { f: T }` / unit.
    pub tuple: bool,
    /// 1-based source line.
    pub line: usize,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name (`None` for impls — see `impl_ty` — and `Other`).
    pub name: Option<String>,
    /// For [`ItemKind::Impl`]: the rendered self type (after any `for`).
    pub impl_ty: Option<String>,
    /// 1-based line of the first token.
    pub line: usize,
    /// Traits named in `#[derive(...)]` attributes on this item.
    pub derives: Vec<String>,
    /// True under `#[test]` / `#[cfg(test)]` (inherited from parents).
    pub is_test: bool,
    /// Token range `[start, end)` the item occupies, attributes included.
    pub span: (usize, usize),
    /// Token range of the braced body's *interior*, when there is one
    /// (fn/mod/impl/trait bodies, macro `{…}` payloads).
    pub body: Option<(usize, usize)>,
    /// Struct fields ([`ItemKind::Struct`] / [`ItemKind::Union`]).
    pub fields: Vec<Field>,
    /// Enum variants ([`ItemKind::Enum`]).
    pub variants: Vec<Variant>,
    /// For [`ItemKind::Use`]: `(local name, full path)` bindings; a glob
    /// import is recorded as `("*", "path::*")`.
    pub imports: Vec<(String, String)>,
    /// Nested items (mod/impl/trait bodies).
    pub children: Vec<Item>,
}

impl Item {
    fn new(kind: ItemKind, line: usize, start: usize) -> Self {
        Self {
            kind,
            name: None,
            impl_ty: None,
            line,
            derives: Vec::new(),
            is_test: false,
            span: (start, start),
            body: None,
            fields: Vec::new(),
            variants: Vec::new(),
            imports: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Depth-first walk over this item and its children.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Item>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// The parsed form of one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl ParsedFile {
    /// Every item in the file, depth first.
    pub fn all_items(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        for i in &self.items {
            i.walk(&mut out);
        }
        out
    }
}

/// Renders a token slice as canonical type/expression text: punctuation is
/// glued, a single space separates word-like tokens (`dyn Fn`, `&'a str`).
pub fn render_tokens(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        let word = matches!(t.kind, TokKind::Ident | TokKind::Num | TokKind::Lifetime);
        if word && out.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            out.push(' ');
        }
        if t.kind == TokKind::Lifetime {
            out.push('\'');
        }
        out.push_str(&t.text);
    }
    out
}

/// Parses a lexed file into its item tree.
///
/// # Errors
/// Structurally broken input: an unclosed `{`/`(`/`[` at item level.
pub fn parse(file: &LexedFile) -> Result<ParsedFile, String> {
    let mut p = Parser { toks: &file.tokens, pos: 0 };
    let items = p.items(false, None)?;
    Ok(ParsedFile { items })
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    fn at_punct(&self, ch: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
    }

    fn punct_at(&self, off: usize) -> Option<&str> {
        self.toks.get(self.pos + off).filter(|t| t.kind == TokKind::Punct).map(|t| t.text.as_str())
    }

    fn ident_at(&self, off: usize) -> Option<&str> {
        self.toks.get(self.pos + off).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str())
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn line(&self) -> usize {
        self.peek().map_or(self.toks.last().map_or(1, |t| t.line), |t| t.line)
    }

    fn err(&self, msg: &str) -> String {
        format!("line {}: {msg}", self.line())
    }

    /// Skips a balanced delimiter group starting at the current token
    /// (which must be `(`, `[`, or `{`), tracking only the matching pair.
    fn skip_balanced(&mut self) -> Result<(), String> {
        let open = self.peek().ok_or_else(|| self.err("expected a delimiter"))?.text.clone();
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            other => return Err(self.err(&format!("not a delimiter: {other:?}"))),
        };
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return Ok(());
                    }
                }
            }
            self.bump();
        }
        Err(format!("unclosed `{open}`"))
    }

    /// Skips a generic parameter list starting at `<`. Tolerates `->`
    /// inside `Fn(…) -> T` bounds.
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    "-" if self.punct_at(1) == Some(">") => {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.bump();
                            return;
                        }
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Parses items until end of input or — when `in_block` — the `}`
    /// closing the surrounding body.
    fn items(&mut self, in_block: bool, inherit_test: Option<bool>) -> Result<Vec<Item>, String> {
        let mut out = Vec::new();
        while let Some(t) = self.peek() {
            if in_block && t.kind == TokKind::Punct && t.text == "}" {
                break;
            }
            let mut item = self.item()?;
            if inherit_test == Some(true) {
                mark_test(&mut item);
            }
            out.push(item);
        }
        Ok(out)
    }

    /// Parses one item (attributes included). Never returns `None` before
    /// end of input: unrecognized tokens come back as 1-token `Other`s.
    fn item(&mut self) -> Result<Item, String> {
        let start = self.pos;
        let line = self.line();
        let mut item = Item::new(ItemKind::Other, line, start);

        // Attributes: outer `#[…]` and inner `#![…]`.
        while self.at_punct("#") {
            let attr_start = self.pos;
            self.bump();
            if self.at_punct("!") {
                self.bump();
            }
            if !self.at_punct("[") {
                // A stray `#` (e.g. inside skipped macro output) — treat the
                // token as Other and bail out of this item.
                self.pos = attr_start + 1;
                item.span = (start, self.pos);
                return Ok(item);
            }
            let body_start = self.pos + 1;
            self.skip_balanced()?;
            self.scan_attr(&self.toks[body_start..self.pos - 1], &mut item);
        }

        // Visibility and modifier keywords.
        loop {
            if self.at_ident("pub") {
                self.bump();
                if self.at_punct("(") {
                    self.skip_balanced()?;
                }
                continue;
            }
            if self.at_ident("unsafe") || self.at_ident("async") || self.at_ident("default") {
                self.bump();
                continue;
            }
            // `const fn` / `extern "C" fn` are modifiers; `const NAME` /
            // `extern crate` are items, handled below.
            if self.at_ident("const") && self.ident_at(1) == Some("fn") {
                self.bump();
                continue;
            }
            if self.at_ident("extern")
                && (self.toks.get(self.pos + 1).is_some_and(|t| t.kind == TokKind::Str))
                && self.ident_at(2) == Some("fn")
            {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }

        let Some(head) = self.peek() else {
            item.span = (start, self.pos);
            return Ok(item);
        };
        if head.kind != TokKind::Ident {
            self.bump();
            item.span = (start, self.pos);
            return Ok(item);
        }

        match head.text.as_str() {
            "fn" => self.finish_fn(&mut item)?,
            "struct" | "union" => {
                let is_union = head.text == "union";
                self.finish_struct(&mut item)?;
                if is_union {
                    item.kind = ItemKind::Union;
                }
            }
            "enum" => self.finish_enum(&mut item)?,
            "impl" => self.finish_impl(&mut item)?,
            "mod" => self.finish_mod(&mut item)?,
            "trait" => self.finish_trait(&mut item)?,
            "use" => self.finish_use(&mut item)?,
            "macro_rules" => self.finish_macro_rules(&mut item)?,
            "const" | "static" | "type" | "extern" => self.finish_terminated(&mut item)?,
            name if self.punct_at(1) == Some("!") => {
                let name = name.to_string();
                self.finish_macro_invocation(&mut item, name)?;
            }
            _ => self.bump(), // expression/statement token in item position
        }
        item.span = (start, self.pos);
        Ok(item)
    }

    fn scan_attr(&self, attr: &[Tok], item: &mut Item) {
        // `derive(A, B)` → collect the trait names.
        if attr.first().is_some_and(|t| t.text == "derive") {
            for t in &attr[1..] {
                if t.kind == TokKind::Ident {
                    item.derives.push(t.text.clone());
                }
            }
        }
        // `#[test]` / `#[cfg(test)]` (but not `cfg(not(test))`).
        let mut saw_test = false;
        let mut saw_not = false;
        for t in attr {
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "test" => saw_test = true,
                    "not" => saw_not = true,
                    _ => {}
                }
            }
        }
        if saw_test && !saw_not {
            item.is_test = true;
        }
    }

    fn parse_name(&mut self) -> Option<String> {
        let name = self.peek().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
        if name.is_some() {
            self.bump();
        }
        name
    }

    fn finish_fn(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Fn;
        self.bump(); // fn
        item.name = self.parse_name();
        if self.at_punct("<") {
            self.skip_generics();
        }
        // Signature up to the body `{` or a `;` (trait method without a
        // default body). Parens/brackets are skipped whole so a `{` inside
        // a const-generic default can't fool us.
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => {
                        self.skip_balanced()?;
                        continue;
                    }
                    ";" => {
                        self.bump();
                        return Ok(());
                    }
                    "{" => {
                        let body_start = self.pos + 1;
                        self.skip_balanced()?;
                        item.body = Some((body_start, self.pos - 1));
                        return Ok(());
                    }
                    _ => {}
                }
            }
            self.bump();
        }
        Err("fn without body or `;`".into())
    }

    fn finish_struct(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Struct;
        self.bump(); // struct/union
        item.name = self.parse_name();
        if self.at_punct("<") {
            self.skip_generics();
        }
        // Where clause (before the brace in struct syntax).
        while let Some(t) = self.peek() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => {
                    let inner_start = self.pos + 1;
                    self.skip_balanced()?;
                    item.fields = parse_named_fields(&self.toks[inner_start..self.pos - 1]);
                    return Ok(());
                }
                (TokKind::Punct, "(") => {
                    let inner_start = self.pos + 1;
                    self.skip_balanced()?;
                    item.fields = parse_tuple_fields(&self.toks[inner_start..self.pos - 1]);
                    // trailing where-clause + `;`
                    while self.peek().is_some() && !self.at_punct(";") {
                        self.bump();
                    }
                    if self.at_punct(";") {
                        self.bump();
                    }
                    return Ok(());
                }
                (TokKind::Punct, ";") => {
                    self.bump();
                    return Ok(());
                }
                _ => self.bump(),
            }
        }
        Err("struct without body or `;`".into())
    }

    fn finish_enum(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Enum;
        self.bump(); // enum
        item.name = self.parse_name();
        if self.at_punct("<") {
            self.skip_generics();
        }
        while self.peek().is_some() && !self.at_punct("{") {
            self.bump();
        }
        if !self.at_punct("{") {
            return Err("enum without body".into());
        }
        let inner_start = self.pos + 1;
        self.skip_balanced()?;
        item.variants = parse_variants(&self.toks[inner_start..self.pos - 1]);
        Ok(())
    }

    fn finish_impl(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Impl;
        self.bump(); // impl
        if self.at_punct("<") {
            self.skip_generics();
        }
        let ty_start = self.pos;
        let mut ty_end = self.pos;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct && t.text == "{" {
                break;
            }
            if t.kind == TokKind::Ident && (t.text == "for" || t.text == "where") {
                self.bump();
                if t.text == "for" {
                    // self type follows the trait name
                    let self_ty_start = self.pos;
                    while self.peek().is_some() && !self.at_punct("{") && !self.at_ident("where") {
                        self.bump();
                    }
                    item.impl_ty = Some(render_tokens(&self.toks[self_ty_start..self.pos]));
                }
                continue;
            }
            self.bump();
            ty_end = self.pos;
        }
        if item.impl_ty.is_none() {
            item.impl_ty = Some(render_tokens(&self.toks[ty_start..ty_end]));
        }
        if !self.at_punct("{") {
            return Err("impl without body".into());
        }
        let body_start = self.pos + 1;
        self.bump(); // `{`
        item.children = self.items(true, Some(item.is_test))?;
        if !self.at_punct("}") {
            return Err("unclosed impl body".into());
        }
        self.bump();
        item.body = Some((body_start, self.pos - 1));
        Ok(())
    }

    fn finish_mod(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Mod;
        self.bump(); // mod
        item.name = self.parse_name();
        if self.at_punct(";") {
            self.bump();
            return Ok(());
        }
        if !self.at_punct("{") {
            return Err("mod without body or `;`".into());
        }
        let body_start = self.pos + 1;
        self.bump();
        item.children = self.items(true, Some(item.is_test))?;
        if !self.at_punct("}") {
            return Err("unclosed mod body".into());
        }
        self.bump();
        item.body = Some((body_start, self.pos - 1));
        Ok(())
    }

    fn finish_trait(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Trait;
        self.bump(); // trait
        item.name = self.parse_name();
        while self.peek().is_some() && !self.at_punct("{") {
            if self.at_punct("<") {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        if !self.at_punct("{") {
            return Err("trait without body".into());
        }
        let body_start = self.pos + 1;
        self.bump();
        item.children = self.items(true, Some(item.is_test))?;
        if !self.at_punct("}") {
            return Err("unclosed trait body".into());
        }
        self.bump();
        item.body = Some((body_start, self.pos - 1));
        Ok(())
    }

    fn finish_use(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Use;
        self.bump(); // use
        let tree_start = self.pos;
        // Balance-aware scan to the terminating `;`.
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            self.bump();
        }
        let tree = &self.toks[tree_start..self.pos];
        if self.at_punct(";") {
            self.bump();
        }
        expand_use_tree(tree, "", &mut item.imports);
        Ok(())
    }

    fn finish_macro_rules(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::MacroDef;
        self.bump(); // macro_rules
        if self.at_punct("!") {
            self.bump();
        }
        item.name = self.parse_name();
        if self.at_punct("{") {
            let body_start = self.pos + 1;
            self.skip_balanced()?;
            item.body = Some((body_start, self.pos - 1));
            Ok(())
        } else {
            Err("macro_rules without body".into())
        }
    }

    fn finish_macro_invocation(&mut self, item: &mut Item, name: String) -> Result<(), String> {
        item.kind = ItemKind::MacroInvocation;
        item.name = Some(name);
        self.bump(); // name
        self.bump(); // !
        match self.peek().map(|t| t.text.as_str()) {
            Some("{") => {
                let body_start = self.pos + 1;
                self.skip_balanced()?;
                item.body = Some((body_start, self.pos - 1));
            }
            Some("(") | Some("[") => {
                let body_start = self.pos + 1;
                self.skip_balanced()?;
                item.body = Some((body_start, self.pos - 1));
                if self.at_punct(";") {
                    self.bump();
                }
            }
            _ => return Err("macro invocation without a delimiter".into()),
        }
        Ok(())
    }

    /// `const`/`static`/`type`/`extern crate`: name then skip to `;`
    /// (initializer expressions may contain braces — skipped whole).
    fn finish_terminated(&mut self, item: &mut Item) -> Result<(), String> {
        item.kind = ItemKind::Other;
        self.bump(); // keyword
        if self.at_ident("mut") || self.at_ident("crate") {
            self.bump();
        }
        item.name = self.parse_name();
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => {
                        self.skip_balanced()?;
                        continue;
                    }
                    ";" => {
                        self.bump();
                        return Ok(());
                    }
                    _ => {}
                }
            }
            self.bump();
        }
        Ok(()) // tolerated: EOF after an item tail
    }
}

fn mark_test(item: &mut Item) {
    item.is_test = true;
    for c in &mut item.children {
        mark_test(c);
    }
}

/// Splits `toks` on top-level commas (tracking all three delimiter kinds
/// plus angle brackets with a `->` guard).
fn split_top_commas(toks: &[Tok]) -> Vec<&[Tok]> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut angle = 0isize;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                "-" if toks.get(i + 1).is_some_and(|n| n.text == ">") => i += 1,
                ">" => angle = (angle - 1).max(0),
                "," if depth == 0 && angle == 0 => {
                    out.push(&toks[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        i += 1;
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

/// Strips leading attributes and visibility from a field/variant chunk.
fn strip_field_prefix(mut toks: &[Tok]) -> &[Tok] {
    loop {
        if toks.first().is_some_and(|t| t.text == "#") {
            // `#[…]`: find the matching `]`.
            let mut depth = 0usize;
            let mut cut = toks.len();
            for (i, t) in toks.iter().enumerate().skip(1) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                cut = i + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            toks = &toks[cut.min(toks.len())..];
            continue;
        }
        if toks.first().is_some_and(|t| t.kind == TokKind::Ident && t.text == "pub") {
            toks = &toks[1..];
            if toks.first().is_some_and(|t| t.text == "(") {
                let mut depth = 0usize;
                let mut cut = toks.len();
                for (i, t) in toks.iter().enumerate() {
                    match t.text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                cut = i + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                toks = &toks[cut.min(toks.len())..];
            }
            continue;
        }
        return toks;
    }
}

fn parse_named_fields(toks: &[Tok]) -> Vec<Field> {
    let mut out = Vec::new();
    for chunk in split_top_commas(toks) {
        let chunk = strip_field_prefix(chunk);
        let Some(name_tok) = chunk.first().filter(|t| t.kind == TokKind::Ident) else { continue };
        if chunk.get(1).is_none_or(|t| t.text != ":") {
            continue;
        }
        out.push(Field {
            name: Some(name_tok.text.clone()),
            ty: render_tokens(&chunk[2..]),
            line: name_tok.line,
        });
    }
    out
}

fn parse_tuple_fields(toks: &[Tok]) -> Vec<Field> {
    split_top_commas(toks)
        .into_iter()
        .map(strip_field_prefix)
        .filter(|c| !c.is_empty())
        .map(|c| Field { name: None, ty: render_tokens(c), line: c[0].line })
        .collect()
}

fn parse_variants(toks: &[Tok]) -> Vec<Variant> {
    let mut out = Vec::new();
    for chunk in split_top_commas(toks) {
        let chunk = strip_field_prefix(chunk);
        let Some(name_tok) = chunk.first().filter(|t| t.kind == TokKind::Ident) else { continue };
        let mut v = Variant {
            name: name_tok.text.clone(),
            fields: Vec::new(),
            tuple: false,
            line: name_tok.line,
        };
        match chunk.get(1).map(|t| t.text.as_str()) {
            Some("(") => {
                v.tuple = true;
                v.fields = parse_tuple_fields(&chunk[2..chunk.len().saturating_sub(1)]);
            }
            Some("{") => {
                v.fields = parse_named_fields(&chunk[2..chunk.len().saturating_sub(1)]);
            }
            _ => {} // unit (possibly with `= discriminant`, which adds no fields)
        }
        out.push(v);
    }
    out
}

/// Expands a use-tree token slice into `(local name, full path)` pairs.
fn expand_use_tree(toks: &[Tok], prefix: &str, out: &mut Vec<(String, String)>) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0usize;
    let joined = |prefix: &str, segs: &[String]| -> String {
        let tail = segs.join("::");
        match (prefix.is_empty(), tail.is_empty()) {
            (true, _) => tail,
            (_, true) => prefix.to_string(),
            _ => format!("{prefix}::{tail}"),
        }
    };
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "as") => {
                // `path as alias`
                if let Some(alias) = toks.get(i + 1).filter(|a| a.kind == TokKind::Ident) {
                    out.push((alias.text.clone(), joined(prefix, &segs)));
                }
                return;
            }
            (TokKind::Ident, _) => {
                segs.push(t.text.clone());
                i += 1;
            }
            (TokKind::Punct, ":") => i += 1,
            (TokKind::Punct, "*") => {
                out.push(("*".into(), format!("{}::*", joined(prefix, &segs))));
                return;
            }
            (TokKind::Punct, "{") => {
                // Group: recurse per top-level comma chunk of the interior.
                let mut depth = 0usize;
                let mut close = toks.len();
                for (j, u) in toks.iter().enumerate().skip(i) {
                    match u.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                close = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let new_prefix = joined(prefix, &segs);
                for sub in split_top_commas(&toks[i + 1..close]) {
                    expand_use_tree(sub, &new_prefix, out);
                }
                return;
            }
            _ => i += 1,
        }
    }
    if let Some(last) = segs.last().cloned() {
        if last == "self" {
            // `use a::b::{self}` binds `b`.
            segs.pop();
            if let Some(parent) = segs.last().cloned() {
                out.push((parent, joined(prefix, &segs)));
            }
        } else {
            out.push((last, joined(prefix, &segs)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src)).expect("parses")
    }

    #[test]
    fn items_tile_the_token_stream() {
        let src = "use a::b; fn f() { let x = 1; } struct S { a: u32 } ; enum E { A, B(u8) }";
        let lexed = lex(src);
        let parsed = parse(&lexed).unwrap();
        let mut cursor = 0usize;
        for item in &parsed.items {
            assert_eq!(item.span.0, cursor, "gap before {:?}", item.kind);
            cursor = item.span.1;
        }
        assert_eq!(cursor, lexed.tokens.len());
    }

    #[test]
    fn struct_fields_and_types() {
        let p = parse_src(
            "#[derive(Clone, Serialize)] pub struct Quantized { rows: usize, packed: Vec<u8>, \
             pair: (f32, f32) }",
        );
        let s = &p.items[0];
        assert_eq!(s.kind, ItemKind::Struct);
        assert_eq!(s.name.as_deref(), Some("Quantized"));
        assert_eq!(s.derives, vec!["Clone", "Serialize"]);
        let tys: Vec<&str> = s.fields.iter().map(|f| f.ty.as_str()).collect();
        assert_eq!(tys, vec!["usize", "Vec<u8>", "(f32,f32)"]);
    }

    #[test]
    fn enum_variants_cover_all_shapes() {
        let p = parse_src(
            "enum FpMessage { Exact { h: Matrix, m_cr: Matrix }, Compressed(Quantized), Unit }",
        );
        let e = &p.items[0];
        assert_eq!(e.variants.len(), 3);
        assert_eq!(e.variants[0].fields.len(), 2);
        assert!(e.variants[1].tuple);
        assert!(e.variants[2].fields.is_empty());
    }

    #[test]
    fn impl_and_mod_children_are_nested() {
        let p = parse_src(
            "impl Engine { fn step(&mut self) {} fn report(&self) -> u32 { 0 } }\n\
             mod inner { pub fn helper() {} }",
        );
        assert_eq!(p.items[0].kind, ItemKind::Impl);
        assert_eq!(p.items[0].impl_ty.as_deref(), Some("Engine"));
        assert_eq!(p.items[0].children.len(), 2);
        assert_eq!(p.items[1].children[0].name.as_deref(), Some("helper"));
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let p = parse_src(
            "use ec_comm::{HostTimer, clock::HostTimer as HT, stats::*};\nuse crate::exec;",
        );
        let mut all: Vec<(String, String)> = Vec::new();
        for i in &p.items {
            all.extend(i.imports.iter().cloned());
        }
        assert!(all.contains(&("HostTimer".into(), "ec_comm::HostTimer".into())));
        assert!(all.contains(&("HT".into(), "ec_comm::clock::HostTimer".into())));
        assert!(all.contains(&("*".into(), "ec_comm::stats::*".into())));
        assert!(all.contains(&("exec".into(), "crate::exec".into())));
    }

    #[test]
    fn macro_definition_vs_invocation() {
        let p = parse_src(
            "macro_rules! metric_catalog { ($x:ident) => { pub enum E { $x } } }\n\
             metric_catalog! { Alive => { \"a\", Counter } }",
        );
        assert_eq!(p.items[0].kind, ItemKind::MacroDef);
        assert_eq!(p.items[1].kind, ItemKind::MacroInvocation);
        assert_eq!(p.items[1].name.as_deref(), Some("metric_catalog"));
        assert!(p.items[1].body.is_some());
    }

    #[test]
    fn cfg_test_marks_children_recursively() {
        let p = parse_src("#[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }");
        assert!(p.items[0].is_test);
        assert!(p.items[0].children.iter().all(|c| c.is_test));
    }

    #[test]
    fn generic_fn_signatures_parse() {
        let p = parse_src(
            "pub fn run_workers<R: Send>(threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> \
             { body() }",
        );
        let f = &p.items[0];
        assert_eq!(f.kind, ItemKind::Fn);
        assert_eq!(f.name.as_deref(), Some("run_workers"));
        assert!(f.body.is_some());
    }

    #[test]
    fn unclosed_delimiter_is_an_error() {
        assert!(parse(&lex("fn f() { let x = 1;")).is_err());
    }

    #[test]
    fn render_spaces_word_tokens_only() {
        let lexed = lex("&'a dyn Fn(u32) -> Vec<u8>");
        assert_eq!(render_tokens(&lexed.tokens), "&'a dyn Fn(u32)->Vec<u8>");
    }
}
