//! The effect lattice and the fixpoint inference pass.
//!
//! Every transitive rule asks the same shape of question: *does anything
//! this function can reach do X*, where X is one of a small, closed set of
//! determinism-relevant behaviors. This module names that set
//! ([`Effect`]), detects the behaviors syntactically per function body
//! ([`scan_direct`] — the same token detectors the per-file rules use),
//! and propagates them over the call graph to a least fixpoint
//! ([`infer`]). The lattice is a finite powerset (six bits), so monotone
//! propagation terminates unconditionally — cycles in the call graph just
//! mean the members of a strongly connected component share one effect
//! set. The fixpoint is unique, hence independent of visit order; the
//! proptest in `tests/callgraph_effects.rs` checks both properties against
//! a brute-force reachability oracle on randomized cyclic graphs.

use crate::lexer::{Tok, TokKind};
use crate::rules::{ident_at, is_punct};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Methods that emit simulated network traffic.
pub(crate) const SEND_METHODS: &[&str] = &["send", "try_send", "broadcast"];

/// [`TelemetrySink`]-shaped recording methods (checked together with the
/// receiver-name heuristic below, so `points.push(x)` stays clean while
/// `ring.push(ev)` is flagged).
pub(crate) const TELEMETRY_METHODS: &[&str] =
    &["add", "set", "observe", "span", "push", "push_host_span", "note_crash", "rewind_to_epoch"];

/// Receiver-name fragments that mark a binding as replay-ordered shared
/// state (the sink, the registry, a span ring, the simulated network).
pub(crate) const SHARED_STATE_FRAGMENTS: &[&str] =
    &["telemetry", "sink", "registry", "ring", "network", "net"];

/// Methods whose call on a `HashMap`/`HashSet` walks it in arbitrary order.
pub(crate) const UNORDERED_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_keys", "into_values"];

pub(crate) fn receiver_is_shared_state(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    SHARED_STATE_FRAGMENTS.iter().any(|frag| lower.contains(frag))
}

/// One determinism-relevant behavior a function may (transitively) have.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Emits simulated network traffic (`send`/`try_send`/`broadcast`).
    Sends,
    /// Writes replay-ordered telemetry (sink/registry/ring methods,
    /// `record_*` helpers).
    Telemetry,
    /// Reads the host clock (`Instant`/`SystemTime`).
    WallClock,
    /// Can panic (`unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`).
    MayPanic,
    /// Iterates a hash container in process-random order.
    UnorderedIter,
    /// Draws OS entropy (`thread_rng`/`from_entropy`).
    UnseededRng,
}

impl Effect {
    /// Every effect, in bit order.
    pub const ALL: [Effect; 6] = [
        Effect::Sends,
        Effect::Telemetry,
        Effect::WallClock,
        Effect::MayPanic,
        Effect::UnorderedIter,
        Effect::UnseededRng,
    ];

    /// The effect's bit in an [`EffectSet`].
    pub fn bit(self) -> u8 {
        match self {
            Effect::Sends => 1 << 0,
            Effect::Telemetry => 1 << 1,
            Effect::WallClock => 1 << 2,
            Effect::MayPanic => 1 << 3,
            Effect::UnorderedIter => 1 << 4,
            Effect::UnseededRng => 1 << 5,
        }
    }

    /// Stable display name (used in diagnostics and the cache format).
    pub fn name(self) -> &'static str {
        match self {
            Effect::Sends => "Sends",
            Effect::Telemetry => "Telemetry",
            Effect::WallClock => "WallClock",
            Effect::MayPanic => "MayPanic",
            Effect::UnorderedIter => "UnorderedIter",
            Effect::UnseededRng => "UnseededRng",
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A subset of the six effects, as a bitset. The partial order is set
/// inclusion; `union` is the lattice join.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectSet(pub u8);

impl EffectSet {
    /// The empty set (lattice bottom).
    pub const EMPTY: EffectSet = EffectSet(0);

    /// Builds a set from the given effects.
    pub fn of(effects: &[Effect]) -> Self {
        let mut s = Self::EMPTY;
        for &e in effects {
            s.insert(e);
        }
        s
    }

    /// Adds one effect.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Set union (the lattice join), in place. Returns true if `self` grew.
    pub fn join(&mut self, other: EffectSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// Whether `e` is in the set.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Whether any of `others` is in the set.
    pub fn intersects(self, others: EffectSet) -> bool {
        self.0 & others.0 != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The members, in [`Effect::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }
}

impl fmt::Display for EffectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.iter().map(Effect::name).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

/// One syntactic occurrence of a direct effect inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EffectSite {
    /// Which effect the site exhibits.
    pub effect: Effect,
    /// 1-based source line.
    pub line: usize,
    /// Short rendering of the offending code (`` `net.send()` ``).
    pub what: String,
}

/// Scans `[range.0, range.1)` of `toks` for direct effect sites, skipping
/// tokens under `mask` (test regions). `unordered_names` is the file-level
/// set of bindings declared with a hash-container type or initializer —
/// iteration rooted at one of them is an [`Effect::UnorderedIter`] site.
pub(crate) fn scan_direct(
    toks: &[Tok],
    mask: &[bool],
    range: (usize, usize),
    unordered_names: &BTreeSet<String>,
) -> (EffectSet, Vec<EffectSite>) {
    let (start, end) = (range.0, range.1.min(toks.len()));
    let mut set = EffectSet::EMPTY;
    let mut sites = Vec::new();
    let push = |sites: &mut Vec<EffectSite>, effect: Effect, line: usize, what: String| {
        sites.push(EffectSite { effect, line, what });
    };
    for i in start..end {
        if mask.get(i).copied().unwrap_or(false) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let line = toks[i].line;
        match name {
            "Instant" | "SystemTime" => {
                set.insert(Effect::WallClock);
                push(&mut sites, Effect::WallClock, line, format!("`{name}`"));
                continue;
            }
            "thread_rng" | "from_entropy" => {
                set.insert(Effect::UnseededRng);
                push(&mut sites, Effect::UnseededRng, line, format!("`{name}`"));
                continue;
            }
            _ => {}
        }
        let after_dot = i >= 1 && is_punct(toks, i - 1, ".");
        let after_path = i >= 2 && is_punct(toks, i - 1, ":") && is_punct(toks, i - 2, ":");
        let called = is_punct(toks, i + 1, "(");
        if (name == "unwrap" || name == "expect") && (after_dot || after_path) {
            set.insert(Effect::MayPanic);
            push(&mut sites, Effect::MayPanic, line, format!("`{name}`"));
            continue;
        }
        if (name == "panic" || name == "todo" || name == "unimplemented")
            && is_punct(toks, i + 1, "!")
            && !called
        {
            set.insert(Effect::MayPanic);
            push(&mut sites, Effect::MayPanic, line, format!("`{name}!`"));
            continue;
        }
        if after_dot && called {
            let receiver = if i >= 2 { ident_at(toks, i - 2) } else { None };
            if SEND_METHODS.contains(&name) {
                set.insert(Effect::Sends);
                let recv = receiver.unwrap_or("<expr>");
                push(&mut sites, Effect::Sends, line, format!("`{recv}.{name}()`"));
                continue;
            }
            if TELEMETRY_METHODS.contains(&name) && receiver.is_some_and(receiver_is_shared_state) {
                set.insert(Effect::Telemetry);
                let recv = receiver.unwrap_or_default();
                push(&mut sites, Effect::Telemetry, line, format!("`{recv}.{name}()`"));
                continue;
            }
            if UNORDERED_ITER_METHODS.contains(&name)
                && receiver.is_some_and(|r| unordered_names.contains(r))
            {
                set.insert(Effect::UnorderedIter);
                let recv = receiver.unwrap_or_default();
                push(&mut sites, Effect::UnorderedIter, line, format!("`{recv}.{name}()`"));
                continue;
            }
        }
        if name.starts_with("record_") && called && !after_dot {
            set.insert(Effect::Telemetry);
            push(&mut sites, Effect::Telemetry, line, format!("`{name}()`"));
            continue;
        }
        // `for pat in [&]binding {` over a hash container.
        if name == "for" {
            let limit = (i + 16).min(end);
            let mut j = i + 1;
            while j < limit && ident_at(toks, j) != Some("in") && !is_punct(toks, j, "{") {
                j += 1;
            }
            if j < limit && ident_at(toks, j) == Some("in") {
                let mut k = j + 1;
                while k < end && (is_punct(toks, k, "&") || ident_at(toks, k) == Some("mut")) {
                    k += 1;
                }
                if let Some(target) = ident_at(toks, k) {
                    if unordered_names.contains(target) && is_punct(toks, k + 1, "{") {
                        set.insert(Effect::UnorderedIter);
                        push(
                            &mut sites,
                            Effect::UnorderedIter,
                            toks[k].line,
                            format!("`for … in {target}`"),
                        );
                    }
                }
            }
        }
    }
    (set, sites)
}

/// Propagates direct effects over `edges` (caller → sorted callee names)
/// to the least fixpoint: `all(f) = direct(f) ∪ ⋃ all(callee)`.
///
/// Termination does not depend on the graph being acyclic: each sweep
/// either grows at least one 6-bit set or stops, so the loop runs at most
/// `6 · |nodes| + 1` sweeps — the bound doubles as a widening guard, and
/// the `debug_assert` documents that it is never reached in practice.
pub fn infer(
    edges: &BTreeMap<String, Vec<String>>,
    direct: &BTreeMap<String, EffectSet>,
) -> BTreeMap<String, EffectSet> {
    let mut all: BTreeMap<String, EffectSet> = direct.clone();
    for callees in edges.values() {
        for c in callees {
            all.entry(c.clone()).or_insert(EffectSet::EMPTY);
        }
    }
    for caller in edges.keys() {
        all.entry(caller.clone()).or_insert(EffectSet::EMPTY);
    }
    let max_sweeps = 6 * all.len() + 1;
    let mut sweeps = 0usize;
    loop {
        let mut changed = false;
        for (caller, callees) in edges {
            let mut joined = all.get(caller).copied().unwrap_or(EffectSet::EMPTY);
            for callee in callees {
                if let Some(ce) = all.get(callee) {
                    joined.0 |= ce.0;
                }
            }
            let entry = all.entry(caller.clone()).or_insert(EffectSet::EMPTY);
            if entry.join(joined) {
                changed = true;
            }
        }
        sweeps += 1;
        if !changed {
            return all;
        }
        if sweeps > max_sweeps {
            debug_assert!(false, "effect inference exceeded the widening bound");
            return all;
        }
    }
}

/// Shortest call chain (BFS, lexicographic tie-break via sorted adjacency)
/// from `from` to any function whose *direct* effects include `effect`.
/// Returns the chain as fully-qualified names, `from` first. A function
/// that exhibits the effect directly yields a one-element chain.
pub fn chain_to_effect(
    edges: &BTreeMap<String, Vec<String>>,
    direct: &BTreeMap<String, EffectSet>,
    from: &str,
    effect: Effect,
) -> Option<Vec<String>> {
    let has_direct = |f: &str| direct.get(f).is_some_and(|s| s.contains(effect));
    if has_direct(from) {
        return Some(vec![from.to_string()]);
    }
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<String> = std::collections::VecDeque::new();
    queue.push_back(from.to_string());
    parent.insert(from.to_string(), String::new());
    while let Some(cur) = queue.pop_front() {
        let Some(callees) = edges.get(&cur) else { continue };
        for callee in callees {
            if parent.contains_key(callee) {
                continue;
            }
            parent.insert(callee.clone(), cur.clone());
            if has_direct(callee) {
                let mut chain = vec![callee.clone()];
                let mut at = cur;
                while !at.is_empty() {
                    chain.push(at.clone());
                    at = parent[&at].clone();
                }
                chain.reverse();
                return Some(chain);
            }
            queue.push_back(callee.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{test_mask, typed_names};

    fn scan_src(src: &str) -> (EffectSet, Vec<EffectSite>) {
        let file = lex(src);
        let mask = test_mask(&file.tokens);
        let unordered = typed_names(&file.tokens, &mask, &["HashMap", "HashSet", "Receiver"]);
        scan_direct(&file.tokens, &mask, (0, file.tokens.len()), &unordered)
    }

    #[test]
    fn detects_every_effect_kind() {
        let (set, sites) = scan_src(
            "fn f(m: HashMap<u32, f64>) {\n\
             let t = Instant::now();\n\
             let r = thread_rng();\n\
             let x = opt.unwrap();\n\
             net.send(0, b);\n\
             sink.observe(id, l, 1.0);\n\
             for k in &m { use_it(k); }\n\
             }",
        );
        for e in Effect::ALL {
            assert!(set.contains(e), "missing {e} in {set}: {sites:?}");
        }
        assert_eq!(sites.len(), 6, "{sites:?}");
    }

    #[test]
    fn test_regions_and_plain_receivers_are_clean() {
        let (set, _) = scan_src(
            "#[cfg(test)] mod t { fn g() { x.unwrap(); } }\n\
             fn f(points: &mut Vec<u32>) { points.push(1); }",
        );
        assert!(set.is_empty(), "{set}");
    }

    #[test]
    fn fixpoint_propagates_through_cycles() {
        let mut edges: BTreeMap<String, Vec<String>> = BTreeMap::new();
        edges.insert("a".into(), vec!["b".into()]);
        edges.insert("b".into(), vec!["c".into(), "a".into()]); // cycle a↔b
        let mut direct = BTreeMap::new();
        direct.insert("c".into(), EffectSet::of(&[Effect::MayPanic]));
        direct.insert("a".into(), EffectSet::of(&[Effect::Sends]));
        let all = infer(&edges, &direct);
        assert!(all["a"].contains(Effect::MayPanic));
        assert!(all["b"].contains(Effect::MayPanic));
        assert!(all["b"].contains(Effect::Sends), "cycle feeds a's Sends back into b");
        assert!(!all["c"].contains(Effect::Sends));
    }

    #[test]
    fn chains_are_shortest_and_deterministic() {
        let mut edges: BTreeMap<String, Vec<String>> = BTreeMap::new();
        edges.insert("entry".into(), vec!["long".into(), "short".into()]);
        edges.insert("long".into(), vec!["mid".into()]);
        edges.insert("mid".into(), vec!["sink".into()]);
        edges.insert("short".into(), vec!["sink".into()]);
        let mut direct = BTreeMap::new();
        direct.insert("sink".into(), EffectSet::of(&[Effect::UnorderedIter]));
        let chain = chain_to_effect(&edges, &direct, "entry", Effect::UnorderedIter).unwrap();
        assert_eq!(chain, vec!["entry", "short", "sink"]);
        assert!(chain_to_effect(&edges, &direct, "entry", Effect::Sends).is_none());
    }
}
