//! Diagnostics: what a rule reports and how it is printed.

use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: printed, never fails the build.
    Warn,
    /// Hard failure under `--check`.
    Error,
}

impl Severity {
    /// The lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a severity from config text.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "warn" | "warning" => Ok(Severity::Warn),
            "error" | "deny" => Ok(Severity::Error),
            other => Err(format!("unknown severity {other:?} (expected \"warn\" or \"error\")")),
        }
    }
}

/// One finding at a `file:line`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: String,
    /// Its configured severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

impl Diagnostic {
    /// Machine-readable form for `--json`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "rule": self.rule,
            "severity": self.severity.as_str(),
            "path": self.path,
            "line": self.line,
            "message": self.message,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule() {
        let d = Diagnostic {
            rule: "no-wall-clock".into(),
            severity: Severity::Error,
            path: "crates/core/src/engine.rs".into(),
            line: 42,
            message: "std::time::Instant used".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/engine.rs:42: error [no-wall-clock] std::time::Instant used"
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let d = Diagnostic {
            rule: "r".into(),
            severity: Severity::Warn,
            path: "p.rs".into(),
            line: 1,
            message: "m".into(),
        };
        assert_eq!(
            d.to_json().to_string(),
            r#"{"rule":"r","severity":"warn","path":"p.rs","line":1,"message":"m"}"#
        );
    }
}
