//! Diagnostics: what a rule reports and how it is printed.

use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: printed, never fails the build.
    Warn,
    /// Hard failure under `--check`.
    Error,
}

impl Severity {
    /// The lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a severity from config text.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "warn" | "warning" => Ok(Severity::Warn),
            "error" | "deny" => Ok(Severity::Error),
            other => Err(format!("unknown severity {other:?} (expected \"warn\" or \"error\")")),
        }
    }
}

/// One finding at a `file:line`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: String,
    /// Its configured severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation of the violation.
    pub message: String,
    /// Supporting context — for the transitive rules, the call chain that
    /// carries the effect to the flagged line.
    pub note: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.severity.as_str(),
            self.rule,
            self.message
        )?;
        if let Some(note) = &self.note {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

impl Diagnostic {
    /// Machine-readable form for `--json`. The `note` key appears only
    /// when the finding carries one, so note-less reports keep their
    /// pre-existing byte shape.
    pub fn to_json(&self) -> serde_json::Value {
        let mut obj = serde_json::json!({
            "rule": self.rule,
            "severity": self.severity.as_str(),
            "path": self.path,
            "line": self.line,
            "message": self.message,
        });
        if let Some(note) = &self.note {
            obj["note"] = serde_json::Value::String(note.clone());
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule() {
        let d = Diagnostic {
            rule: "no-wall-clock".into(),
            severity: Severity::Error,
            path: "crates/core/src/engine.rs".into(),
            line: 42,
            message: "std::time::Instant used".into(),
            note: None,
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/engine.rs:42: error [no-wall-clock] std::time::Instant used"
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let d = Diagnostic {
            rule: "r".into(),
            severity: Severity::Warn,
            path: "p.rs".into(),
            line: 1,
            message: "m".into(),
            note: None,
        };
        assert_eq!(
            d.to_json().to_string(),
            r#"{"rule":"r","severity":"warn","path":"p.rs","line":1,"message":"m"}"#
        );
    }

    #[test]
    fn notes_render_indented_and_serialize() {
        let d = Diagnostic {
            rule: "no-panic-hot-path".into(),
            severity: Severity::Error,
            path: "p.rs".into(),
            line: 3,
            message: "m".into(),
            note: Some("call chain: a → b".into()),
        };
        assert_eq!(d.to_string(), "p.rs:3: error [no-panic-hot-path] m\n  note: call chain: a → b");
        assert_eq!(d.to_json()["note"].as_str(), Some("call chain: a → b"));
    }
}
