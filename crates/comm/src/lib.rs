//! # `ec-comm` — the simulated cluster substrate
//!
//! The paper runs on two physical CPU clusters connected by Gigabit
//! Ethernet, with gRPC/protobuf carrying vertex messages between workers
//! and parameter servers. This crate is the reproduction's substitute: an
//! in-process cluster whose messages are real serialized bytes and whose
//! time accounting follows the same physics the testbed imposes.
//!
//! * [`clock`] — the [`clock::NetworkModel`] converting (bytes, messages)
//!   into seconds; presets for the paper's Gigabit Ethernet and for the
//!   100 Gbps fabric DistDGL assumes;
//! * [`codec`] — little-endian wire encoding for matrices and index sets
//!   (the protobuf stand-in), with exact size accounting;
//! * [`network`] — [`network::SimNetwork`], the per-link byte/message
//!   ledger; epoch communication time is derived from the busiest NIC, the
//!   way a synchronous superstep over full-duplex Ethernet behaves;
//! * [`ps`] — range-partitioned parameter servers with `pull`/`push`
//!   operators and a server-side Adam optimizer (Section III-A's Parameter
//!   Manager);
//! * [`stats`] — per-epoch traffic summaries used by every experiment.

pub mod clock;
pub mod codec;
pub mod network;
pub mod ps;
pub mod stats;

pub use clock::{set_deterministic_timing, HostTimer, NetworkModel};
pub use network::{SendError, SimNetwork};
pub use ps::{CheckpointError, ParameterServerGroup};
pub use stats::{LinkMatrix, TrafficStats};
