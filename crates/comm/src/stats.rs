//! Per-epoch traffic summaries.
//!
//! Every experiment in the paper reasons about bytes on the wire: Table II's
//! communication column, the `32/B` compression factor, and the epoch-time
//! speedups of Table IV. [`TrafficStats`] is the ledger those numbers are
//! read from. Besides the per-channel totals it carries a [`LinkMatrix`] —
//! the per-`(src, dst)` byte breakdown the telemetry layer exports as the
//! link traffic matrix — and counters for the fault events (drops,
//! corruptions, duplicates) that produced the `retry_bytes`.

use serde::{Deserialize, Serialize};

/// Which logical channel a transfer belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    /// Embedding messages of the forward pass (`H` matrices).
    Forward,
    /// Embedding-gradient messages of the backward pass (`G` matrices).
    Backward,
    /// Parameter pulls/pushes between workers and servers.
    Parameter,
    /// Control traffic (vertex-id requests, selector arrays, proportions).
    Control,
    /// Wasted transmissions under fault injection: dropped or corrupted
    /// attempts and redundant duplicate deliveries.
    Retry,
}

/// Dense per-`(src, dst)` byte matrix, row-major, grown on demand to the
/// highest node index it has seen. Node indexing follows the simulated
/// cluster: workers first, then parameter servers.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkMatrix {
    nodes: usize,
    bytes: Vec<u64>,
}

impl LinkMatrix {
    /// An empty matrix (grows when links are recorded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes the matrix currently spans.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// True when no link has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    fn grow_to(&mut self, nodes: usize) {
        if nodes <= self.nodes {
            return;
        }
        let mut grown = vec![0; nodes * nodes];
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                grown[from * nodes + to] = self.bytes[from * self.nodes + to];
            }
        }
        self.nodes = nodes;
        self.bytes = grown;
    }

    /// Charges `bytes` to the `from -> to` link.
    pub fn record(&mut self, from: usize, to: usize, bytes: u64) {
        self.grow_to(from.max(to) + 1);
        self.bytes[from * self.nodes + to] += bytes;
    }

    /// Bytes recorded on the `from -> to` link (zero when out of range).
    pub fn get(&self, from: usize, to: usize) -> u64 {
        if from < self.nodes && to < self.nodes {
            self.bytes[from * self.nodes + to]
        } else {
            0
        }
    }

    /// Adds another matrix into this one, growing as needed.
    pub fn merge(&mut self, other: &LinkMatrix) {
        self.grow_to(other.nodes);
        for from in 0..other.nodes {
            for to in 0..other.nodes {
                self.bytes[from * self.nodes + to] += other.bytes[from * other.nodes + to];
            }
        }
    }

    /// Iterates non-zero links in ascending `(from, to)` order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        let n = self.nodes;
        self.bytes.iter().enumerate().filter(|(_, &b)| b > 0).map(move |(i, &b)| (i / n, i % n, b))
    }
}

/// Byte and message counters, split per channel, plus the per-link matrix
/// and fault-event counts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Forward-pass embedding bytes.
    pub fp_bytes: u64,
    /// Backward-pass gradient bytes.
    pub bp_bytes: u64,
    /// Parameter pull/push bytes.
    pub param_bytes: u64,
    /// Request/selector/control bytes.
    pub control_bytes: u64,
    /// Bytes wasted on failed or duplicated transmissions (fault injection).
    pub retry_bytes: u64,
    /// Total number of messages.
    pub messages: u64,
    /// Per-`(src, dst)` byte breakdown (includes wasted bytes).
    pub links: LinkMatrix,
    /// Messages lost in transit (fault injection).
    pub dropped_msgs: u64,
    /// Messages that arrived but failed their checksum (fault injection).
    pub corrupted_msgs: u64,
    /// Redundant duplicate deliveries (fault injection).
    pub duplicated_msgs: u64,
}

impl TrafficStats {
    /// Records one message of `bytes` on `channel`.
    pub fn record(&mut self, channel: Channel, bytes: u64) {
        match channel {
            Channel::Forward => self.fp_bytes += bytes,
            Channel::Backward => self.bp_bytes += bytes,
            Channel::Parameter => self.param_bytes += bytes,
            Channel::Control => self.control_bytes += bytes,
            Channel::Retry => self.retry_bytes += bytes,
        }
        self.messages += 1;
    }

    /// Total bytes across all channels.
    pub fn total_bytes(&self) -> u64 {
        self.fp_bytes + self.bp_bytes + self.param_bytes + self.control_bytes + self.retry_bytes
    }

    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.fp_bytes += other.fp_bytes;
        self.bp_bytes += other.bp_bytes;
        self.param_bytes += other.param_bytes;
        self.control_bytes += other.control_bytes;
        self.retry_bytes += other.retry_bytes;
        self.messages += other.messages;
        self.links.merge(&other.links);
        self.dropped_msgs += other.dropped_msgs;
        self.corrupted_msgs += other.corrupted_msgs;
        self.duplicated_msgs += other.duplicated_msgs;
    }

    /// Resets all counters to zero, returning the previous values.
    pub fn take(&mut self) -> TrafficStats {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_channel() {
        let mut s = TrafficStats::default();
        s.record(Channel::Forward, 100);
        s.record(Channel::Backward, 50);
        s.record(Channel::Parameter, 25);
        s.record(Channel::Control, 5);
        assert_eq!(s.fp_bytes, 100);
        assert_eq!(s.bp_bytes, 50);
        assert_eq!(s.param_bytes, 25);
        assert_eq!(s.control_bytes, 5);
        assert_eq!(s.messages, 4);
        assert_eq!(s.total_bytes(), 180);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::default();
        a.record(Channel::Forward, 10);
        let mut b = TrafficStats::default();
        b.record(Channel::Forward, 32);
        b.record(Channel::Backward, 8);
        a.merge(&b);
        assert_eq!(a.fp_bytes, 42);
        assert_eq!(a.messages, 3);
    }

    #[test]
    fn retry_bytes_count_toward_total() {
        let mut s = TrafficStats::default();
        s.record(Channel::Forward, 100);
        s.record(Channel::Retry, 40);
        assert_eq!(s.retry_bytes, 40);
        assert_eq!(s.total_bytes(), 140);
        let mut merged = TrafficStats::default();
        merged.merge(&s);
        assert_eq!(merged.retry_bytes, 40);
    }

    #[test]
    fn take_resets() {
        let mut s = TrafficStats::default();
        s.record(Channel::Control, 7);
        s.links.record(0, 1, 7);
        let old = s.take();
        assert_eq!(old.control_bytes, 7);
        assert_eq!(old.links.get(0, 1), 7);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.messages, 0);
        assert!(s.links.is_empty());
    }

    #[test]
    fn link_matrix_grows_on_demand() {
        let mut m = LinkMatrix::new();
        m.record(0, 1, 10);
        assert_eq!(m.nodes(), 2);
        m.record(3, 0, 5);
        assert_eq!(m.nodes(), 4);
        assert_eq!(m.get(0, 1), 10, "growth must preserve prior counts");
        assert_eq!(m.get(3, 0), 5);
        assert_eq!(m.get(9, 9), 0);
    }

    #[test]
    fn link_matrix_merges_mismatched_sizes() {
        let mut a = LinkMatrix::new();
        a.record(0, 1, 10);
        let mut b = LinkMatrix::new();
        b.record(0, 1, 5);
        b.record(2, 0, 3);
        a.merge(&b);
        assert_eq!(a.get(0, 1), 15);
        assert_eq!(a.get(2, 0), 3);
        assert_eq!(a.nodes(), 3);
    }

    #[test]
    fn link_matrix_iterates_in_ascending_order() {
        let mut m = LinkMatrix::new();
        m.record(2, 0, 3);
        m.record(0, 1, 1);
        m.record(1, 2, 2);
        let links: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(links, vec![(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
    }

    #[test]
    fn fault_counters_merge() {
        let mut a = TrafficStats { dropped_msgs: 1, corrupted_msgs: 2, ..TrafficStats::default() };
        let b = TrafficStats { dropped_msgs: 3, duplicated_msgs: 4, ..TrafficStats::default() };
        a.merge(&b);
        assert_eq!(a.dropped_msgs, 4);
        assert_eq!(a.corrupted_msgs, 2);
        assert_eq!(a.duplicated_msgs, 4);
    }
}
