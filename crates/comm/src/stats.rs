//! Per-epoch traffic summaries.
//!
//! Every experiment in the paper reasons about bytes on the wire: Table II's
//! communication column, the `32/B` compression factor, and the epoch-time
//! speedups of Table IV. [`TrafficStats`] is the ledger those numbers are
//! read from.

use serde::{Deserialize, Serialize};

/// Which logical channel a transfer belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    /// Embedding messages of the forward pass (`H` matrices).
    Forward,
    /// Embedding-gradient messages of the backward pass (`G` matrices).
    Backward,
    /// Parameter pulls/pushes between workers and servers.
    Parameter,
    /// Control traffic (vertex-id requests, selector arrays, proportions).
    Control,
    /// Wasted transmissions under fault injection: dropped or corrupted
    /// attempts and redundant duplicate deliveries.
    Retry,
}

/// Byte and message counters, split per channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Forward-pass embedding bytes.
    pub fp_bytes: u64,
    /// Backward-pass gradient bytes.
    pub bp_bytes: u64,
    /// Parameter pull/push bytes.
    pub param_bytes: u64,
    /// Request/selector/control bytes.
    pub control_bytes: u64,
    /// Bytes wasted on failed or duplicated transmissions (fault injection).
    pub retry_bytes: u64,
    /// Total number of messages.
    pub messages: u64,
}

impl TrafficStats {
    /// Records one message of `bytes` on `channel`.
    pub fn record(&mut self, channel: Channel, bytes: u64) {
        match channel {
            Channel::Forward => self.fp_bytes += bytes,
            Channel::Backward => self.bp_bytes += bytes,
            Channel::Parameter => self.param_bytes += bytes,
            Channel::Control => self.control_bytes += bytes,
            Channel::Retry => self.retry_bytes += bytes,
        }
        self.messages += 1;
    }

    /// Total bytes across all channels.
    pub fn total_bytes(&self) -> u64 {
        self.fp_bytes + self.bp_bytes + self.param_bytes + self.control_bytes + self.retry_bytes
    }

    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.fp_bytes += other.fp_bytes;
        self.bp_bytes += other.bp_bytes;
        self.param_bytes += other.param_bytes;
        self.control_bytes += other.control_bytes;
        self.retry_bytes += other.retry_bytes;
        self.messages += other.messages;
    }

    /// Resets all counters to zero, returning the previous values.
    pub fn take(&mut self) -> TrafficStats {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_channel() {
        let mut s = TrafficStats::default();
        s.record(Channel::Forward, 100);
        s.record(Channel::Backward, 50);
        s.record(Channel::Parameter, 25);
        s.record(Channel::Control, 5);
        assert_eq!(s.fp_bytes, 100);
        assert_eq!(s.bp_bytes, 50);
        assert_eq!(s.param_bytes, 25);
        assert_eq!(s.control_bytes, 5);
        assert_eq!(s.messages, 4);
        assert_eq!(s.total_bytes(), 180);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::default();
        a.record(Channel::Forward, 10);
        let mut b = TrafficStats::default();
        b.record(Channel::Forward, 32);
        b.record(Channel::Backward, 8);
        a.merge(&b);
        assert_eq!(a.fp_bytes, 42);
        assert_eq!(a.messages, 3);
    }

    #[test]
    fn retry_bytes_count_toward_total() {
        let mut s = TrafficStats::default();
        s.record(Channel::Forward, 100);
        s.record(Channel::Retry, 40);
        assert_eq!(s.retry_bytes, 40);
        assert_eq!(s.total_bytes(), 140);
        let mut merged = TrafficStats::default();
        merged.merge(&s);
        assert_eq!(merged.retry_bytes, 40);
    }

    #[test]
    fn take_resets() {
        let mut s = TrafficStats::default();
        s.record(Channel::Control, 7);
        let old = s.take();
        assert_eq!(old.control_bytes, 7);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.messages, 0);
    }
}
