//! The simulated network: a per-link byte/message ledger plus the derived
//! communication time.
//!
//! The engine executes synchronous supersteps (one per GNN layer per
//! direction). Within a superstep every worker exchanges messages; the
//! superstep's communication time is governed by the busiest NIC:
//!
//! `t = max_node (latency · messages_sent(node)
//!               + max(bytes_in(node), bytes_out(node)) / bandwidth)`
//!
//! which models full-duplex Ethernet where each machine sends and receives
//! concurrently but serializes its own traffic. Transfers with
//! `from == to` are shared-memory accesses (the paper's "local neighboring
//! vertices are obtained from the shared memory") and cost nothing.
//!
//! # Fault injection
//!
//! A network built with [`SimNetwork::with_faults`] consults a
//! deterministic [`FaultInjector`] on every transmission. Failed attempts
//! (drops, corruptions) and redundant duplicates charge their bytes to
//! [`Channel::Retry`] — so `latency · retries + resent bytes / bandwidth`
//! lands in the simulated clock through the ordinary NIC accounting — and
//! each failure additionally charges a timeout-detection delay to both
//! endpoints, folded into the superstep time at the next
//! [`SimNetwork::flush_superstep`]. Straggler nodes have their NIC time
//! scaled by the configured factor. A network built with
//! [`FaultPlan::none`] (or plain [`SimNetwork::new`]) takes none of these
//! paths and its ledger and clock are bit-identical to the fault-free
//! implementation.

use crate::clock::NetworkModel;
use crate::stats::{Channel, TrafficStats};
use ec_faults::{FaultDecision, FaultInjector, FaultPlan};

/// Why a [`SimNetwork::try_send`] attempt failed to deliver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The message was lost in transit (timeout at the receiver).
    Dropped,
    /// The message arrived but failed its checksum.
    Corrupted,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Dropped => write!(f, "message dropped"),
            SendError::Corrupted => write!(f, "message corrupted"),
        }
    }
}

impl std::error::Error for SendError {}

/// Attempts a guaranteed [`SimNetwork::send`] makes before concluding the
/// fault pattern cannot be out-waited within the superstep and delivering
/// anyway (every failed attempt stays charged).
const FORCED_SEND_ATTEMPTS: u64 = 16;

/// Byte-accurate network simulation for a fixed set of nodes.
#[derive(Clone, Debug)]
pub struct SimNetwork {
    model: NetworkModel,
    in_bytes: Vec<u64>,
    out_bytes: Vec<u64>,
    out_msgs: Vec<u64>,
    epoch_stats: TrafficStats,
    total_stats: TrafficStats,
    epoch_time: f64,
    total_time: f64,
    /// Fault machinery; `None` keeps every hot path identical to the
    /// fault-free implementation.
    faults: Option<FaultInjector>,
    /// Completed supersteps (keys the injector's stateless hashes).
    superstep: u64,
    /// Messages attempted within the current superstep.
    msg_seq: u64,
    /// Timeout-detection seconds charged per node, consumed at flush.
    pending_delay: Vec<f64>,
}

impl SimNetwork {
    /// Creates a network connecting `num_nodes` machines.
    pub fn new(num_nodes: usize, model: NetworkModel) -> Self {
        Self {
            model,
            in_bytes: vec![0; num_nodes],
            out_bytes: vec![0; num_nodes],
            out_msgs: vec![0; num_nodes],
            epoch_stats: TrafficStats::default(),
            total_stats: TrafficStats::default(),
            epoch_time: 0.0,
            total_time: 0.0,
            faults: None,
            superstep: 0,
            msg_seq: 0,
            pending_delay: vec![0.0; num_nodes],
        }
    }

    /// Creates a network whose transmissions are subjected to `plan`.
    /// [`FaultPlan::none`] yields a network bit-identical to
    /// [`SimNetwork::new`].
    ///
    /// # Panics
    /// Panics when the plan fails [`FaultPlan::validate`].
    pub fn with_faults(num_nodes: usize, model: NetworkModel, plan: FaultPlan) -> Self {
        let mut net = Self::new(num_nodes, model);
        if !plan.is_none() {
            net.faults = Some(FaultInjector::new(plan));
        }
        net
    }

    /// Number of simulated machines.
    pub fn num_nodes(&self) -> usize {
        self.in_bytes.len()
    }

    /// The timing model in force.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// The fault injector, when fault injection is active.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Completed supersteps since construction (the outage clock).
    pub fn superstep_index(&self) -> u64 {
        self.superstep
    }

    /// Records a delivered message on the per-node NICs and the ledgers.
    fn deliver(&mut self, from: usize, to: usize, channel: Channel, bytes: u64) {
        self.out_bytes[from] += bytes;
        self.out_msgs[from] += 1;
        self.in_bytes[to] += bytes;
        self.epoch_stats.record(channel, bytes);
        self.epoch_stats.links.record(from, to, bytes);
        self.total_stats.record(channel, bytes);
        self.total_stats.links.record(from, to, bytes);
    }

    /// Counts one fault event on both ledgers.
    fn count_fault(&mut self, decision: FaultDecision) {
        for stats in [&mut self.epoch_stats, &mut self.total_stats] {
            match decision {
                FaultDecision::Drop => stats.dropped_msgs += 1,
                FaultDecision::Corrupt => stats.corrupted_msgs += 1,
                FaultDecision::Duplicate => stats.duplicated_msgs += 1,
                FaultDecision::Deliver => {}
            }
        }
    }

    /// One transmission attempt under fault injection.
    fn attempt(
        &mut self,
        from: usize,
        to: usize,
        channel: Channel,
        bytes: u64,
    ) -> Result<(), SendError> {
        let Some(injector) = self.faults.as_ref() else {
            // No injector means a perfect link: every attempt delivers.
            self.deliver(from, to, channel, bytes);
            return Ok(());
        };
        let decision = injector.decide(self.superstep, from, to, self.msg_seq);
        let timeout = injector.timeout_cost(self.model.latency);
        self.msg_seq += 1;
        match decision {
            FaultDecision::Deliver => {
                self.deliver(from, to, channel, bytes);
                Ok(())
            }
            FaultDecision::Duplicate => {
                self.deliver(from, to, channel, bytes);
                // The redundant copy crosses the wire too; the receiver
                // discards it after paying for its reception.
                self.deliver(from, to, Channel::Retry, bytes);
                self.count_fault(decision);
                Ok(())
            }
            FaultDecision::Drop => {
                // The sender transmits into the void; the receiver learns
                // nothing until its timeout fires.
                self.out_bytes[from] += bytes;
                self.out_msgs[from] += 1;
                self.epoch_stats.record(Channel::Retry, bytes);
                self.epoch_stats.links.record(from, to, bytes);
                self.total_stats.record(Channel::Retry, bytes);
                self.total_stats.links.record(from, to, bytes);
                self.count_fault(decision);
                self.pending_delay[from] += timeout;
                self.pending_delay[to] += timeout;
                Err(SendError::Dropped)
            }
            FaultDecision::Corrupt => {
                // Full transfer on both NICs, then the checksum fails.
                self.deliver(from, to, Channel::Retry, bytes);
                self.count_fault(decision);
                self.pending_delay[from] += timeout;
                self.pending_delay[to] += timeout;
                Err(SendError::Corrupted)
            }
        }
    }

    /// Records one message of `bytes` from `from` to `to` on `channel`.
    /// Same-node transfers are free and unrecorded.
    ///
    /// Under fault injection the message is retried until delivered
    /// (charging every failed attempt); `send` never loses data, making it
    /// the right primitive for traffic whose loss the engine cannot absorb
    /// (gradients, parameters, trend boundaries).
    pub fn send(&mut self, from: usize, to: usize, channel: Channel, bytes: u64) {
        debug_assert!(from < self.num_nodes() && to < self.num_nodes(), "node out of range");
        if from == to {
            return;
        }
        if self.faults.is_none() {
            self.deliver(from, to, channel, bytes);
            return;
        }
        for _ in 0..FORCED_SEND_ATTEMPTS {
            if self.attempt(from, to, channel, bytes).is_ok() {
                return;
            }
        }
        // The link is saturated with faults (e.g. an outage): the transfer
        // completes once conditions clear; the wait is already charged.
        self.deliver(from, to, channel, bytes);
    }

    /// Attempts to deliver one message, reporting a drop or corruption to
    /// the caller instead of retrying. Failed attempts charge their bytes
    /// to [`Channel::Retry`] plus a timeout-detection delay on both
    /// endpoints. Without fault injection this is exactly [`Self::send`].
    pub fn try_send(
        &mut self,
        from: usize,
        to: usize,
        channel: Channel,
        bytes: u64,
    ) -> Result<(), SendError> {
        debug_assert!(from < self.num_nodes() && to < self.num_nodes(), "node out of range");
        if from == to {
            return Ok(());
        }
        if self.faults.is_none() {
            self.deliver(from, to, channel, bytes);
            return Ok(());
        }
        self.attempt(from, to, channel, bytes)
    }

    /// Closes the current superstep: derives its communication time from
    /// the busiest NIC (straggler-scaled, plus any timeout-detection
    /// delays), accumulates it, and clears the per-node counters.
    pub fn flush_superstep(&mut self) -> f64 {
        let mut t: f64 = 0.0;
        for node in 0..self.num_nodes() {
            let wire = self.in_bytes[node].max(self.out_bytes[node]);
            let mut node_t = self.model.transfer_time(wire, self.out_msgs[node]);
            if let Some(injector) = &self.faults {
                node_t = node_t * injector.straggler_factor(node) + self.pending_delay[node];
            }
            t = t.max(node_t);
        }
        self.in_bytes.iter_mut().for_each(|x| *x = 0);
        self.out_bytes.iter_mut().for_each(|x| *x = 0);
        self.out_msgs.iter_mut().for_each(|x| *x = 0);
        self.pending_delay.iter_mut().for_each(|x| *x = 0.0);
        self.superstep += 1;
        self.msg_seq = 0;
        self.epoch_time += t;
        self.total_time += t;
        t
    }

    /// Closes the current epoch, returning `(traffic, comm_seconds)` and
    /// resetting the per-epoch accumulators. Implicitly flushes any open
    /// superstep.
    pub fn end_epoch(&mut self) -> (TrafficStats, f64) {
        self.flush_superstep();
        let stats = self.epoch_stats.take();
        let time = std::mem::take(&mut self.epoch_time);
        (stats, time)
    }

    /// Cumulative traffic since construction.
    pub fn total_stats(&self) -> TrafficStats {
        self.total_stats.clone()
    }

    /// Cumulative communication seconds since construction.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_faults::LinkFaults;

    fn net(nodes: usize) -> SimNetwork {
        SimNetwork::new(nodes, NetworkModel { bandwidth: 1000.0, latency: 0.0 })
    }

    #[test]
    fn local_transfers_are_free() {
        let mut n = net(2);
        n.send(0, 0, Channel::Forward, 1_000_000);
        assert_eq!(n.flush_superstep(), 0.0);
        assert_eq!(n.total_stats().total_bytes(), 0);
    }

    #[test]
    fn superstep_time_tracks_busiest_nic() {
        let mut n = net(3);
        n.send(0, 1, Channel::Forward, 1000); // node0 out=1000, node1 in=1000
        n.send(0, 2, Channel::Forward, 3000); // node0 out=4000
        let t = n.flush_superstep();
        assert!((t - 4.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn full_duplex_takes_max_of_in_out() {
        let mut n = net(2);
        n.send(0, 1, Channel::Forward, 2000);
        n.send(1, 0, Channel::Forward, 5000);
        let t = n.flush_superstep();
        assert!((t - 5.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn latency_counts_sent_messages() {
        let mut n = SimNetwork::new(2, NetworkModel { bandwidth: f64::INFINITY, latency: 1.0 });
        n.send(0, 1, Channel::Control, 1);
        n.send(0, 1, Channel::Control, 1);
        assert!((n.flush_superstep() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn supersteps_accumulate_into_epoch() {
        let mut n = net(2);
        n.send(0, 1, Channel::Forward, 1000);
        n.flush_superstep();
        n.send(1, 0, Channel::Backward, 2000);
        n.flush_superstep();
        let (stats, time) = n.end_epoch();
        assert_eq!(stats.fp_bytes, 1000);
        assert_eq!(stats.bp_bytes, 2000);
        assert!((time - 3.0).abs() < 1e-9);
        // epoch accumulators reset
        let (stats2, time2) = n.end_epoch();
        assert_eq!(stats2.total_bytes(), 0);
        assert_eq!(time2, 0.0);
        // totals persist
        assert_eq!(n.total_stats().total_bytes(), 3000);
        assert!((n.total_time() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn end_epoch_flushes_open_superstep() {
        let mut n = net(2);
        n.send(0, 1, Channel::Forward, 500);
        let (stats, time) = n.end_epoch();
        assert_eq!(stats.fp_bytes, 500);
        assert!(time > 0.0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn send_rejects_unknown_node() {
        let mut n = net(2);
        n.send(0, 5, Channel::Forward, 1);
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_network() {
        let model = NetworkModel { bandwidth: 997.0, latency: 0.003 };
        let mut plain = SimNetwork::new(3, model);
        let mut faulty = SimNetwork::with_faults(3, model, FaultPlan::none());
        assert!(faulty.faults().is_none(), "none plan must not allocate an injector");
        for step in 0..5u64 {
            for m in 0..7 {
                let from = (m % 3) as usize;
                let to = ((m + step) % 3) as usize;
                plain.send(from, to, Channel::Forward, 100 + m);
                faulty.send(from, to, Channel::Forward, 100 + m);
            }
            assert_eq!(plain.flush_superstep().to_bits(), faulty.flush_superstep().to_bits());
        }
        let (ps, pt) = plain.end_epoch();
        let (fs, ft) = faulty.end_epoch();
        assert_eq!(ps, fs);
        assert_eq!(pt.to_bits(), ft.to_bits());
    }

    #[test]
    fn link_matrix_tracks_per_pair_bytes() {
        let mut n = net(3);
        n.send(0, 1, Channel::Forward, 1000);
        n.send(0, 1, Channel::Forward, 500);
        n.send(2, 0, Channel::Backward, 300);
        n.send(1, 1, Channel::Forward, 999); // local: free and unrecorded
        let (stats, _) = n.end_epoch();
        assert_eq!(stats.links.get(0, 1), 1500);
        assert_eq!(stats.links.get(2, 0), 300);
        assert_eq!(stats.links.get(1, 1), 0);
        let links: Vec<_> = stats.links.iter_nonzero().collect();
        assert_eq!(links, vec![(0, 1, 1500), (2, 0, 300)]);
        // epoch matrix resets; the total matrix persists
        let (stats2, _) = n.end_epoch();
        assert!(stats2.links.is_empty());
        assert_eq!(n.total_stats().links.get(0, 1), 1500);
    }

    #[test]
    fn fault_events_are_counted_per_kind() {
        let plan = FaultPlan::uniform_drop(11, 1.0);
        let mut n =
            SimNetwork::with_faults(2, NetworkModel { bandwidth: 1000.0, latency: 0.01 }, plan);
        assert!(n.try_send(0, 1, Channel::Forward, 100).is_err());
        assert!(n.try_send(0, 1, Channel::Forward, 100).is_err());
        let stats = n.total_stats();
        assert_eq!(stats.dropped_msgs, 2);
        assert_eq!(stats.corrupted_msgs, 0);
        // dropped bytes still land on the link matrix: the sender NIC spent them
        assert_eq!(stats.links.get(0, 1), 200);

        let plan = FaultPlan {
            link: LinkFaults { dup_p: 1.0, ..LinkFaults::none() },
            ..FaultPlan::none()
        };
        let mut n =
            SimNetwork::with_faults(2, NetworkModel { bandwidth: 1000.0, latency: 0.0 }, plan);
        n.try_send(0, 1, Channel::Backward, 500).unwrap();
        assert_eq!(n.total_stats().duplicated_msgs, 1);
    }

    #[test]
    fn try_send_reports_drops_and_charges_retry_bytes() {
        let plan = FaultPlan::uniform_drop(11, 1.0);
        let mut n =
            SimNetwork::with_faults(2, NetworkModel { bandwidth: 1000.0, latency: 0.01 }, plan);
        assert_eq!(n.try_send(0, 1, Channel::Forward, 4000), Err(SendError::Dropped));
        let stats = n.total_stats();
        assert_eq!(stats.fp_bytes, 0);
        assert_eq!(stats.retry_bytes, 4000);
        // Sender NIC spent the bytes, and the timeout delay lands in the
        // superstep time: 4000/1000 + 1·latency + 4·latency timeout.
        let t = n.flush_superstep();
        assert!(t > 4.0, "t={t} missing timeout charge");
    }

    #[test]
    fn send_is_guaranteed_even_under_heavy_loss() {
        let plan = FaultPlan { link: LinkFaults::dropping(0.9), ..FaultPlan::uniform_drop(5, 0.9) };
        let mut n = SimNetwork::with_faults(2, NetworkModel { bandwidth: 1e9, latency: 0.0 }, plan);
        n.send(0, 1, Channel::Forward, 1000);
        let stats = n.total_stats();
        assert_eq!(stats.fp_bytes, 1000, "payload must eventually deliver");
        assert!(stats.retry_bytes >= 1000, "failed attempts must be charged");
    }

    #[test]
    fn duplicates_deliver_once_and_charge_the_copy() {
        let plan = FaultPlan {
            link: LinkFaults { dup_p: 1.0, ..LinkFaults::none() },
            ..FaultPlan::none()
        };
        let plan = FaultPlan { seed: 1, ..plan };
        let mut n =
            SimNetwork::with_faults(2, NetworkModel { bandwidth: 1000.0, latency: 0.0 }, plan);
        n.try_send(0, 1, Channel::Backward, 500).unwrap();
        let stats = n.total_stats();
        assert_eq!(stats.bp_bytes, 500);
        assert_eq!(stats.retry_bytes, 500);
        assert_eq!(stats.messages, 2);
    }

    #[test]
    fn outage_blocks_try_send_until_window_ends() {
        let plan = FaultPlan::none().with_outage(Some(0), Some(1), 0, 2);
        let mut n = SimNetwork::with_faults(2, NetworkModel { bandwidth: 1e6, latency: 0.0 }, plan);
        assert!(n.try_send(0, 1, Channel::Forward, 10).is_err());
        assert!(n.try_send(1, 0, Channel::Forward, 10).is_ok(), "reverse link unaffected");
        n.flush_superstep();
        assert!(n.try_send(0, 1, Channel::Forward, 10).is_err(), "superstep 1 still out");
        n.flush_superstep();
        assert!(n.try_send(0, 1, Channel::Forward, 10).is_ok(), "outage over");
    }

    #[test]
    fn stragglers_stretch_their_nic_time() {
        let model = NetworkModel { bandwidth: 1000.0, latency: 0.0 };
        let mut fast = SimNetwork::with_faults(2, model, FaultPlan::none().with_straggler(9, 3.0));
        let mut slow = SimNetwork::with_faults(2, model, FaultPlan::none().with_straggler(1, 3.0));
        fast.send(0, 1, Channel::Forward, 1000);
        slow.send(0, 1, Channel::Forward, 1000);
        let t_fast = fast.flush_superstep();
        let t_slow = slow.flush_superstep();
        assert!((t_fast - 1.0).abs() < 1e-9, "t_fast={t_fast}");
        assert!((t_slow - 3.0).abs() < 1e-9, "straggler receiver: t_slow={t_slow}");
    }

    #[test]
    fn fault_runs_are_reproducible() {
        let run = || {
            let plan = FaultPlan::uniform_drop(1234, 0.2);
            let mut n =
                SimNetwork::with_faults(4, NetworkModel { bandwidth: 1e5, latency: 1e-4 }, plan);
            let mut failures = 0u32;
            for step in 0..6u64 {
                for m in 0..40u64 {
                    let from = (m % 4) as usize;
                    let to = ((m + 1 + step) % 4) as usize;
                    if n.try_send(from, to, Channel::Forward, 256).is_err() {
                        failures += 1;
                    }
                }
                n.flush_superstep();
            }
            (failures, n.total_stats(), n.total_time().to_bits())
        };
        assert_eq!(run(), run());
        let (failures, stats, _) = run();
        assert!(failures > 0, "0.2 drop rate must produce failures");
        assert!(stats.retry_bytes > 0);
    }
}
