//! The simulated network: a per-link byte/message ledger plus the derived
//! communication time.
//!
//! The engine executes synchronous supersteps (one per GNN layer per
//! direction). Within a superstep every worker exchanges messages; the
//! superstep's communication time is governed by the busiest NIC:
//!
//! `t = max_node (latency · messages_sent(node)
//!               + max(bytes_in(node), bytes_out(node)) / bandwidth)`
//!
//! which models full-duplex Ethernet where each machine sends and receives
//! concurrently but serializes its own traffic. Transfers with
//! `from == to` are shared-memory accesses (the paper's "local neighboring
//! vertices are obtained from the shared memory") and cost nothing.

use crate::clock::NetworkModel;
use crate::stats::{Channel, TrafficStats};

/// Byte-accurate network simulation for a fixed set of nodes.
#[derive(Clone, Debug)]
pub struct SimNetwork {
    model: NetworkModel,
    in_bytes: Vec<u64>,
    out_bytes: Vec<u64>,
    out_msgs: Vec<u64>,
    epoch_stats: TrafficStats,
    total_stats: TrafficStats,
    epoch_time: f64,
    total_time: f64,
}

impl SimNetwork {
    /// Creates a network connecting `num_nodes` machines.
    pub fn new(num_nodes: usize, model: NetworkModel) -> Self {
        Self {
            model,
            in_bytes: vec![0; num_nodes],
            out_bytes: vec![0; num_nodes],
            out_msgs: vec![0; num_nodes],
            epoch_stats: TrafficStats::default(),
            total_stats: TrafficStats::default(),
            epoch_time: 0.0,
            total_time: 0.0,
        }
    }

    /// Number of simulated machines.
    pub fn num_nodes(&self) -> usize {
        self.in_bytes.len()
    }

    /// The timing model in force.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Records one message of `bytes` from `from` to `to` on `channel`.
    /// Same-node transfers are free and unrecorded.
    pub fn send(&mut self, from: usize, to: usize, channel: Channel, bytes: u64) {
        assert!(from < self.num_nodes() && to < self.num_nodes(), "node out of range");
        if from == to {
            return;
        }
        self.out_bytes[from] += bytes;
        self.out_msgs[from] += 1;
        self.in_bytes[to] += bytes;
        self.epoch_stats.record(channel, bytes);
        self.total_stats.record(channel, bytes);
    }

    /// Closes the current superstep: derives its communication time from
    /// the busiest NIC, accumulates it, and clears the per-node counters.
    pub fn flush_superstep(&mut self) -> f64 {
        let mut t: f64 = 0.0;
        for node in 0..self.num_nodes() {
            let wire = self.in_bytes[node].max(self.out_bytes[node]);
            let node_t = self.model.transfer_time(wire, self.out_msgs[node]);
            t = t.max(node_t);
        }
        self.in_bytes.iter_mut().for_each(|x| *x = 0);
        self.out_bytes.iter_mut().for_each(|x| *x = 0);
        self.out_msgs.iter_mut().for_each(|x| *x = 0);
        self.epoch_time += t;
        self.total_time += t;
        t
    }

    /// Closes the current epoch, returning `(traffic, comm_seconds)` and
    /// resetting the per-epoch accumulators. Implicitly flushes any open
    /// superstep.
    pub fn end_epoch(&mut self) -> (TrafficStats, f64) {
        self.flush_superstep();
        let stats = self.epoch_stats.take();
        let time = std::mem::take(&mut self.epoch_time);
        (stats, time)
    }

    /// Cumulative traffic since construction.
    pub fn total_stats(&self) -> TrafficStats {
        self.total_stats
    }

    /// Cumulative communication seconds since construction.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: usize) -> SimNetwork {
        SimNetwork::new(nodes, NetworkModel { bandwidth: 1000.0, latency: 0.0 })
    }

    #[test]
    fn local_transfers_are_free() {
        let mut n = net(2);
        n.send(0, 0, Channel::Forward, 1_000_000);
        assert_eq!(n.flush_superstep(), 0.0);
        assert_eq!(n.total_stats().total_bytes(), 0);
    }

    #[test]
    fn superstep_time_tracks_busiest_nic() {
        let mut n = net(3);
        n.send(0, 1, Channel::Forward, 1000); // node0 out=1000, node1 in=1000
        n.send(0, 2, Channel::Forward, 3000); // node0 out=4000
        let t = n.flush_superstep();
        assert!((t - 4.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn full_duplex_takes_max_of_in_out() {
        let mut n = net(2);
        n.send(0, 1, Channel::Forward, 2000);
        n.send(1, 0, Channel::Forward, 5000);
        let t = n.flush_superstep();
        assert!((t - 5.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn latency_counts_sent_messages() {
        let mut n = SimNetwork::new(2, NetworkModel { bandwidth: f64::INFINITY, latency: 1.0 });
        n.send(0, 1, Channel::Control, 1);
        n.send(0, 1, Channel::Control, 1);
        assert!((n.flush_superstep() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn supersteps_accumulate_into_epoch() {
        let mut n = net(2);
        n.send(0, 1, Channel::Forward, 1000);
        n.flush_superstep();
        n.send(1, 0, Channel::Backward, 2000);
        n.flush_superstep();
        let (stats, time) = n.end_epoch();
        assert_eq!(stats.fp_bytes, 1000);
        assert_eq!(stats.bp_bytes, 2000);
        assert!((time - 3.0).abs() < 1e-9);
        // epoch accumulators reset
        let (stats2, time2) = n.end_epoch();
        assert_eq!(stats2.total_bytes(), 0);
        assert_eq!(time2, 0.0);
        // totals persist
        assert_eq!(n.total_stats().total_bytes(), 3000);
        assert!((n.total_time() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn end_epoch_flushes_open_superstep() {
        let mut n = net(2);
        n.send(0, 1, Channel::Forward, 500);
        let (stats, time) = n.end_epoch();
        assert_eq!(stats.fp_bytes, 500);
        assert!(time > 0.0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn send_rejects_unknown_node() {
        let mut n = net(2);
        n.send(0, 5, Channel::Forward, 1);
    }
}
