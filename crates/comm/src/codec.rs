//! Wire encoding for uncompressed payloads — the protobuf stand-in.
//!
//! Compressed payloads carry their own format (`ec_compress::Quantized`);
//! this module serializes everything else the cluster exchanges: dense
//! matrices (exact embeddings, changing-rate matrices, weight pulls) and
//! index sets (requested vertex lists, selector arrays).
//!
//! All integers are little-endian, matrices are row-major `f32`.

use bytes::{Buf, BufMut};
use ec_tensor::Matrix;

/// Serialized size of a dense matrix: `8` header bytes + `4` per entry.
pub fn matrix_wire_size(m: &Matrix) -> usize {
    8 + m.len() * 4
}

/// Serialized size of a `u32` list: `4` header bytes + `4` per element.
pub fn u32s_wire_size(v: &[u32]) -> usize {
    4 + v.len() * 4
}

/// Serialized size of a byte-per-element selector array.
pub fn u8s_wire_size(v: &[u8]) -> usize {
    4 + v.len()
}

/// Appends a matrix to `buf`.
pub fn put_matrix(buf: &mut Vec<u8>, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        buf.put_f32_le(x);
    }
}

/// Reads a matrix written by [`put_matrix`], advancing `buf`.
pub fn get_matrix(buf: &mut &[u8]) -> Result<Matrix, String> {
    if buf.remaining() < 8 {
        return Err("matrix header truncated".into());
    }
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let bytes_needed = rows
        .checked_mul(cols)
        .and_then(|c| c.checked_mul(4))
        .ok_or_else(|| "matrix size overflow".to_string())?;
    let count = rows * cols;
    if buf.remaining() < bytes_needed {
        return Err(format!("matrix body truncated: need {} floats", count));
    }
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        data.push(buf.get_f32_le());
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Appends a `u32` list to `buf`.
pub fn put_u32s(buf: &mut Vec<u8>, v: &[u32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_u32_le(x);
    }
}

/// Reads a `u32` list written by [`put_u32s`].
pub fn get_u32s(buf: &mut &[u8]) -> Result<Vec<u32>, String> {
    if buf.remaining() < 4 {
        return Err("u32 list header truncated".into());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len * 4 {
        return Err("u32 list body truncated".into());
    }
    Ok((0..len).map(|_| buf.get_u32_le()).collect())
}

/// Appends a byte array to `buf`.
pub fn put_u8s(buf: &mut Vec<u8>, v: &[u8]) {
    buf.put_u32_le(v.len() as u32);
    buf.put_slice(v);
}

/// Reads a byte array written by [`put_u8s`].
pub fn get_u8s(buf: &mut &[u8]) -> Result<Vec<u8>, String> {
    if buf.remaining() < 4 {
        return Err("u8 list header truncated".into());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err("u8 list body truncated".into());
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| r as f32 - 0.25 * c as f32);
        let mut buf = Vec::new();
        put_matrix(&mut buf, &m);
        assert_eq!(buf.len(), matrix_wire_size(&m));
        let mut slice = buf.as_slice();
        assert_eq!(get_matrix(&mut slice).unwrap(), m);
        assert!(slice.is_empty());
    }

    #[test]
    fn empty_matrix_round_trip() {
        let m = Matrix::zeros(0, 7);
        let mut buf = Vec::new();
        put_matrix(&mut buf, &m);
        let mut slice = buf.as_slice();
        assert_eq!(get_matrix(&mut slice).unwrap().shape(), (0, 7));
    }

    #[test]
    fn u32s_round_trip() {
        let v = vec![0u32, 5, u32::MAX];
        let mut buf = Vec::new();
        put_u32s(&mut buf, &v);
        assert_eq!(buf.len(), u32s_wire_size(&v));
        assert_eq!(get_u32s(&mut buf.as_slice()).unwrap(), v);
    }

    #[test]
    fn u8s_round_trip() {
        let v = vec![1u8, 0, 2, 2, 1];
        let mut buf = Vec::new();
        put_u8s(&mut buf, &v);
        assert_eq!(buf.len(), u8s_wire_size(&v));
        assert_eq!(get_u8s(&mut buf.as_slice()).unwrap(), v);
    }

    #[test]
    fn sequential_fields_decode_in_order() {
        let m = Matrix::identity(2);
        let mut buf = Vec::new();
        put_u32s(&mut buf, &[9, 8]);
        put_matrix(&mut buf, &m);
        put_u8s(&mut buf, &[3]);
        let mut slice = buf.as_slice();
        assert_eq!(get_u32s(&mut slice).unwrap(), vec![9, 8]);
        assert_eq!(get_matrix(&mut slice).unwrap(), m);
        assert_eq!(get_u8s(&mut slice).unwrap(), vec![3]);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let m = Matrix::identity(3);
        let mut buf = Vec::new();
        put_matrix(&mut buf, &m);
        for cut in [0, 4, 9, buf.len() - 1] {
            let mut slice = &buf[..cut];
            assert!(get_matrix(&mut slice).is_err(), "cut={cut} should fail");
        }
    }

    #[test]
    fn oversized_header_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        let mut slice = buf.as_slice();
        assert!(get_matrix(&mut slice).is_err());
    }
}
