//! Network timing model and the workspace's only wall-clock entry point.
//!
//! The paper's clusters are "connected with a Gigabit Ethernet", and its
//! core claim — compression buys wall-clock time — is the statement that
//! epoch time is dominated by `bytes / bandwidth` there. The model below is
//! the standard latency–bandwidth (α–β) cost model: a transfer of `b` bytes
//! in `m` messages costs `m·α + b/β` seconds.
//!
//! This module also owns [`HostTimer`], the single audited place where the
//! simulation is allowed to read the host's wall clock (compute blocks are
//! *measured*, communication is *modeled*). `ec-lint`'s `no-wall-clock`
//! rule bans `std::time::Instant` everywhere else, so deterministic code
//! cannot accidentally branch on real time, and
//! [`set_deterministic_timing`] can globally replace measurements with
//! zeros when a test or experiment needs byte-identical run reports.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, every [`HostTimer`] reports zero elapsed time, making run
/// reports (which otherwise embed measured compute seconds) byte-identical
/// across runs. Simulated communication time is unaffected — it is derived
/// from byte counts, never from the host clock.
static DETERMINISTIC_TIMING: AtomicBool = AtomicBool::new(false);

/// Globally enables/disables deterministic (zeroed) compute timing.
pub fn set_deterministic_timing(on: bool) {
    // ec-lint: sound(lone flag set before runs start; no other memory is published through it)
    DETERMINISTIC_TIMING.store(on, Ordering::Relaxed);
}

/// Whether deterministic timing is in force.
pub fn deterministic_timing() -> bool {
    // ec-lint: sound(reads the lone flag; stale reads only zero a timer sample)
    DETERMINISTIC_TIMING.load(Ordering::Relaxed)
}

/// A stopwatch over the host's monotonic clock — the only sanctioned way
/// for engine/baseline code to measure real compute time.
///
/// Measurements feed *reporting only* (`compute_s` in run reports); no
/// simulated decision may depend on them. Under
/// [`set_deterministic_timing`] the timer reports `0.0` so that two
/// identical runs produce identical reports.
#[derive(Debug)]
pub struct HostTimer {
    start: Option<std::time::Instant>,
}

impl HostTimer {
    /// Starts a stopwatch (a no-op under deterministic timing).
    pub fn start() -> Self {
        let start = (!deterministic_timing()).then(std::time::Instant::now);
        Self { start }
    }

    /// Seconds since [`HostTimer::start`]; `0.0` under deterministic
    /// timing.
    pub fn elapsed_s(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }
}

/// Latency–bandwidth network model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained point-to-point bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-message latency in seconds (software + propagation).
    pub latency: f64,
}

impl NetworkModel {
    /// Gigabit Ethernet: 1 Gbps ≈ 117 MiB/s effective, 100 µs per message —
    /// the paper's testbed fabric.
    pub fn gigabit_ethernet() -> Self {
        Self { bandwidth: 117.0 * 1024.0 * 1024.0, latency: 100e-6 }
    }

    /// 100 Gbps fabric (the commercial network DistDGL assumes, under which
    /// "communication would not be a bottleneck").
    pub fn hundred_gig() -> Self {
        Self { bandwidth: 11_700.0 * 1024.0 * 1024.0, latency: 10e-6 }
    }

    /// 10 Gbps datacenter Ethernet.
    pub fn ten_gig() -> Self {
        Self { bandwidth: 1_170.0 * 1024.0 * 1024.0, latency: 50e-6 }
    }

    /// An infinitely fast network (isolates compute time in ablations).
    pub fn infinite() -> Self {
        Self { bandwidth: f64::INFINITY, latency: 0.0 }
    }

    /// Seconds to move `bytes` in `messages` discrete messages.
    pub fn transfer_time(&self, bytes: u64, messages: u64) -> f64 {
        messages as f64 * self.latency + bytes as f64 / self.bandwidth
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::gigabit_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_in_bytes() {
        let m = NetworkModel { bandwidth: 1000.0, latency: 0.0 };
        assert_eq!(m.transfer_time(2000, 1), 2.0);
        assert_eq!(m.transfer_time(4000, 1), 4.0);
    }

    #[test]
    fn latency_charged_per_message() {
        let m = NetworkModel { bandwidth: f64::INFINITY, latency: 0.5 };
        assert_eq!(m.transfer_time(1_000_000, 4), 2.0);
    }

    #[test]
    fn gigabit_is_slower_than_hundred_gig() {
        let bytes = 100 * 1024 * 1024;
        let ge = NetworkModel::gigabit_ethernet().transfer_time(bytes, 10);
        let hg = NetworkModel::hundred_gig().transfer_time(bytes, 10);
        assert!(ge > 50.0 * hg, "gigabit {ge} not ≫ hundred-gig {hg}");
    }

    #[test]
    fn infinite_network_is_free() {
        assert_eq!(NetworkModel::infinite().transfer_time(u64::MAX, 1000), 0.0);
    }

    #[test]
    fn network_model_round_trips_through_copy() {
        // `NetworkModel` is part of the config wire surface; assert the
        // value survives a copy/compare cycle for each preset.
        for m in [
            NetworkModel::gigabit_ethernet(),
            NetworkModel::ten_gig(),
            NetworkModel::hundred_gig(),
            NetworkModel::infinite(),
        ] {
            let copy = m;
            assert_eq!(copy, m);
        }
    }

    #[test]
    fn host_timer_measures_when_not_deterministic() {
        // The default mode measures real time: elapsed is non-negative and
        // monotone in repeated reads.
        let t = HostTimer::start();
        let a = t.elapsed_s();
        let b = t.elapsed_s();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
