//! Network timing model.
//!
//! The paper's clusters are "connected with a Gigabit Ethernet", and its
//! core claim — compression buys wall-clock time — is the statement that
//! epoch time is dominated by `bytes / bandwidth` there. The model below is
//! the standard latency–bandwidth (α–β) cost model: a transfer of `b` bytes
//! in `m` messages costs `m·α + b/β` seconds.

use serde::{Deserialize, Serialize};

/// Latency–bandwidth network model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained point-to-point bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-message latency in seconds (software + propagation).
    pub latency: f64,
}

impl NetworkModel {
    /// Gigabit Ethernet: 1 Gbps ≈ 117 MiB/s effective, 100 µs per message —
    /// the paper's testbed fabric.
    pub fn gigabit_ethernet() -> Self {
        Self { bandwidth: 117.0 * 1024.0 * 1024.0, latency: 100e-6 }
    }

    /// 100 Gbps fabric (the commercial network DistDGL assumes, under which
    /// "communication would not be a bottleneck").
    pub fn hundred_gig() -> Self {
        Self { bandwidth: 11_700.0 * 1024.0 * 1024.0, latency: 10e-6 }
    }

    /// 10 Gbps datacenter Ethernet.
    pub fn ten_gig() -> Self {
        Self { bandwidth: 1_170.0 * 1024.0 * 1024.0, latency: 50e-6 }
    }

    /// An infinitely fast network (isolates compute time in ablations).
    pub fn infinite() -> Self {
        Self { bandwidth: f64::INFINITY, latency: 0.0 }
    }

    /// Seconds to move `bytes` in `messages` discrete messages.
    pub fn transfer_time(&self, bytes: u64, messages: u64) -> f64 {
        messages as f64 * self.latency + bytes as f64 / self.bandwidth
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::gigabit_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_in_bytes() {
        let m = NetworkModel { bandwidth: 1000.0, latency: 0.0 };
        assert_eq!(m.transfer_time(2000, 1), 2.0);
        assert_eq!(m.transfer_time(4000, 1), 4.0);
    }

    #[test]
    fn latency_charged_per_message() {
        let m = NetworkModel { bandwidth: f64::INFINITY, latency: 0.5 };
        assert_eq!(m.transfer_time(1_000_000, 4), 2.0);
    }

    #[test]
    fn gigabit_is_slower_than_hundred_gig() {
        let bytes = 100 * 1024 * 1024;
        let ge = NetworkModel::gigabit_ethernet().transfer_time(bytes, 10);
        let hg = NetworkModel::hundred_gig().transfer_time(bytes, 10);
        assert!(ge > 50.0 * hg, "gigabit {ge} not ≫ hundred-gig {hg}");
    }

    #[test]
    fn infinite_network_is_free() {
        assert_eq!(NetworkModel::infinite().transfer_time(u64::MAX, 1000), 0.0);
    }
}
