//! Parameter servers — the paper's Parameter Manager (PM).
//!
//! "PM divides GNN parameters onto m servers according to some user-defined
//! partition strategy. By default, we implement a built-in range-based
//! partition method, which divides the weights W and biases B of each layer
//! evenly." Workers `pull` parameters before each layer and `push`
//! gradients after the backward pass; "the servers receive gradients from
//! each worker, add them up to obtain the global gradients, and update the
//! weights with the global gradients" using Adam.
//!
//! The slices held by individual servers are mathematically independent, so
//! the group updates each layer's full matrix in one pass; the range split
//! only matters for wire accounting, exposed via
//! [`ParameterServerGroup::pull_wire_sizes`] /
//! [`ParameterServerGroup::push_wire_sizes`].

use ec_tensor::{init, Matrix};

/// Why loading or restoring parameter-server state failed.
///
/// `load_weights` / `restore_state` run on the crash-recovery hot path, so
/// they report malformed input through this type instead of panicking
/// (`ec-lint`'s `no-panic-hot-path` rule enforces the absence of `unwrap`
/// in this file).
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The input ended before the named field could be read.
    Truncated(&'static str),
    /// The snapshot holds a different number of layers than this group.
    LayerCount {
        /// Layer count found in the snapshot.
        found: usize,
        /// Layer count of the group being restored.
        expected: usize,
    },
    /// A layer's weight or bias shape does not match this group's.
    ShapeMismatch,
    /// A serialized matrix failed to decode.
    Decode(String),
    /// A recovery was requested but the named checkpoint does not exist.
    Missing(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Truncated(what) => write!(f, "checkpoint truncated: {what}"),
            CheckpointError::LayerCount { found, expected } => {
                write!(f, "checkpoint has {found} layers, expected {expected}")
            }
            CheckpointError::ShapeMismatch => write!(f, "checkpoint shape mismatch"),
            CheckpointError::Decode(msg) => write!(f, "checkpoint decode error: {msg}"),
            CheckpointError::Missing(what) => write!(f, "no checkpoint to restore: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<String> for CheckpointError {
    fn from(msg: String) -> Self {
        CheckpointError::Decode(msg)
    }
}

/// Reads a fixed-size field at `off`, or reports which field was cut off.
fn read_array<const N: usize>(
    bytes: &[u8],
    off: usize,
    what: &'static str,
) -> Result<[u8; N], CheckpointError> {
    bytes
        .get(off..off + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(CheckpointError::Truncated(what))
}

/// Adam hyper-parameters (the paper uses the standard Adam optimizer).
#[derive(Clone, Copy, Debug)]
pub struct AdamParams {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for AdamParams {
    fn default() -> Self {
        Self { lr: 0.01, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// One GNN layer's parameters and their Adam state.
#[derive(Clone, Debug)]
struct LayerParams {
    w: Matrix,
    b: Vec<f32>,
    m_w: Matrix,
    v_w: Matrix,
    m_b: Vec<f32>,
    v_b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
}

/// The group of `m` parameter servers, owning every layer's weights.
#[derive(Clone, Debug)]
pub struct ParameterServerGroup {
    num_servers: usize,
    adam: AdamParams,
    step: u64,
    layers: Vec<LayerParams>,
    pushes_since_update: usize,
}

impl ParameterServerGroup {
    /// Creates servers holding Xavier-initialized weights for the given
    /// `(fan_in, fan_out)` layer shapes.
    pub fn new(shapes: &[(usize, usize)], num_servers: usize, adam: AdamParams, seed: u64) -> Self {
        assert!(num_servers >= 1, "need at least one server");
        let layers = shapes
            .iter()
            .enumerate()
            .map(|(l, &(fi, fo))| LayerParams {
                w: init::xavier_uniform(fi, fo, seed.wrapping_add(l as u64)),
                b: vec![0.0; fo],
                m_w: Matrix::zeros(fi, fo),
                v_w: Matrix::zeros(fi, fo),
                m_b: vec![0.0; fo],
                v_b: vec![0.0; fo],
                grad_w: Matrix::zeros(fi, fo),
                grad_b: vec![0.0; fo],
            })
            .collect();
        Self { num_servers, adam, step: 0, layers, pushes_since_update: 0 }
    }

    /// Number of layers managed.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of servers the parameters are range-split over.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// `pull(l)`: the layer's current weights and bias.
    pub fn pull(&self, layer: usize) -> (&Matrix, &[f32]) {
        let lp = &self.layers[layer];
        (&lp.w, &lp.b)
    }

    /// Bytes each server ships to one worker for a `pull(layer)`: the
    /// range-partitioned rows of `W` plus the bias slice, `f32` each.
    /// Returns one `(server, bytes)` entry per server.
    pub fn pull_wire_sizes(&self, layer: usize) -> Vec<u64> {
        let lp = &self.layers[layer];
        self.split_sizes(lp)
    }

    /// `push(grads)`: a worker delivers its gradient contribution for every
    /// layer; the servers sum contributions until [`Self::apply_update`].
    ///
    /// # Panics
    /// Panics if the shapes do not match the layer shapes.
    pub fn push(&mut self, grads: &[(Matrix, Vec<f32>)]) {
        assert_eq!(grads.len(), self.layers.len(), "gradient count mismatch");
        for (lp, (gw, gb)) in self.layers.iter_mut().zip(grads) {
            assert_eq!(gw.shape(), lp.w.shape(), "weight-gradient shape mismatch");
            assert_eq!(gb.len(), lp.b.len(), "bias-gradient length mismatch");
            ec_tensor::ops::add_assign(&mut lp.grad_w, gw);
            for (a, &g) in lp.grad_b.iter_mut().zip(gb) {
                *a += g;
            }
        }
        self.pushes_since_update += 1;
    }

    /// Bytes one worker ships for a full `push`, split per server.
    pub fn push_wire_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_servers];
        for lp in &self.layers {
            for (s, sz) in self.split_sizes(lp).into_iter().enumerate() {
                sizes[s] += sz;
            }
        }
        sizes
    }

    fn split_sizes(&self, lp: &LayerParams) -> Vec<u64> {
        // Range-split W's rows and b's entries over the servers.
        let rows = lp.w.rows();
        let cols = lp.w.cols();
        (0..self.num_servers)
            .map(|s| {
                let (rs, re) = range(rows, self.num_servers, s);
                let (bs, be) = range(lp.b.len(), self.num_servers, s);
                (((re - rs) * cols + (be - bs)) * 4) as u64
            })
            .collect()
    }

    /// Applies one Adam step using the accumulated (summed) gradients, then
    /// clears the accumulators. Returns the number of pushes consumed.
    pub fn apply_update(&mut self) -> usize {
        let pushed = std::mem::take(&mut self.pushes_since_update);
        if pushed == 0 {
            return 0;
        }
        self.step += 1;
        let a = self.adam;
        let bc1 = 1.0 - a.beta1.powi(self.step as i32);
        let bc2 = 1.0 - a.beta2.powi(self.step as i32);
        for lp in &mut self.layers {
            adam_step(
                lp.w.as_mut_slice(),
                lp.grad_w.as_mut_slice(),
                lp.m_w.as_mut_slice(),
                lp.v_w.as_mut_slice(),
                a,
                bc1,
                bc2,
            );
            adam_step(&mut lp.b, &mut lp.grad_b, &mut lp.m_b, &mut lp.v_b, a, bc1, bc2);
        }
        pushed
    }

    /// Snapshot of all weights (testing / checkpointing).
    pub fn weights(&self) -> Vec<(Matrix, Vec<f32>)> {
        self.layers.iter().map(|lp| (lp.w.clone(), lp.b.clone())).collect()
    }

    /// Overwrites all weights (used to clone model state across baseline
    /// systems so comparisons start from identical parameters).
    pub fn set_weights(&mut self, weights: &[(Matrix, Vec<f32>)]) {
        assert_eq!(weights.len(), self.layers.len(), "layer count mismatch");
        for (lp, (w, b)) in self.layers.iter_mut().zip(weights) {
            assert_eq!(w.shape(), lp.w.shape(), "weight shape mismatch");
            assert_eq!(b.len(), lp.b.len(), "bias length mismatch");
            lp.w = w.clone();
            lp.b = b.clone();
        }
    }
}

/// In-place Adam on a flat parameter slice; zeroes the gradient slice.
fn adam_step(
    params: &mut [f32],
    grads: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    a: AdamParams,
    bias_c1: f32,
    bias_c2: f32,
) {
    for i in 0..params.len() {
        let mut g = grads[i];
        if a.weight_decay != 0.0 {
            g += a.weight_decay * params[i];
        }
        m[i] = a.beta1 * m[i] + (1.0 - a.beta1) * g;
        v[i] = a.beta2 * v[i] + (1.0 - a.beta2) * g * g;
        let m_hat = m[i] / bias_c1;
        let v_hat = v[i] / bias_c2;
        params[i] -= a.lr * m_hat / (v_hat.sqrt() + a.eps);
        grads[i] = 0.0;
    }
}

fn range(n: usize, parts: usize, p: usize) -> (usize, usize) {
    let base = n / parts;
    let extra = n % parts;
    let start = p * base + p.min(extra);
    (start, start + base + usize::from(p < extra))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> ParameterServerGroup {
        ParameterServerGroup::new(&[(4, 3), (3, 2)], 2, AdamParams::default(), 7)
    }

    #[test]
    fn pull_returns_layer_shapes() {
        let ps = group();
        let (w0, b0) = ps.pull(0);
        assert_eq!(w0.shape(), (4, 3));
        assert_eq!(b0.len(), 3);
        let (w1, _) = ps.pull(1);
        assert_eq!(w1.shape(), (3, 2));
    }

    #[test]
    fn pull_wire_sizes_cover_the_full_matrix() {
        let ps = group();
        let total: u64 = ps.pull_wire_sizes(0).iter().sum();
        assert_eq!(total, (4 * 3 + 3) as u64 * 4);
    }

    #[test]
    fn push_then_apply_moves_weights() {
        let mut ps = group();
        let before = ps.pull(0).0.clone();
        let grads = vec![
            (Matrix::filled(4, 3, 1.0), vec![1.0; 3]),
            (Matrix::filled(3, 2, 1.0), vec![1.0; 2]),
        ];
        ps.push(&grads);
        assert_eq!(ps.apply_update(), 1);
        let after = ps.pull(0).0;
        assert!(!before.approx_eq(after, 1e-9));
        // First Adam step moves every coordinate by ≈ lr (bias-corrected).
        for (x, y) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((x - y - 0.01).abs() < 1e-3, "step {} not ≈ lr", x - y);
        }
    }

    #[test]
    fn apply_without_push_is_noop() {
        let mut ps = group();
        let before = ps.weights();
        assert_eq!(ps.apply_update(), 0);
        let after = ps.weights();
        assert_eq!(before[0].0, after[0].0);
    }

    #[test]
    fn pushes_from_multiple_workers_sum() {
        // Two half-gradients must equal one full gradient.
        let mut ps_two = group();
        let mut ps_one = ps_two.clone();
        let half = vec![
            (Matrix::filled(4, 3, 0.5), vec![0.5; 3]),
            (Matrix::filled(3, 2, 0.5), vec![0.5; 2]),
        ];
        let full = vec![
            (Matrix::filled(4, 3, 1.0), vec![1.0; 3]),
            (Matrix::filled(3, 2, 1.0), vec![1.0; 2]),
        ];
        ps_two.push(&half);
        ps_two.push(&half);
        ps_two.apply_update();
        ps_one.push(&full);
        ps_one.apply_update();
        assert!(ps_two.pull(0).0.approx_eq(ps_one.pull(0).0, 1e-6));
    }

    #[test]
    fn set_weights_round_trips() {
        let mut a = group();
        let b = ParameterServerGroup::new(&[(4, 3), (3, 2)], 2, AdamParams::default(), 99);
        a.set_weights(&b.weights());
        assert_eq!(a.pull(0).0, b.pull(0).0);
    }

    #[test]
    fn adam_descends_on_quadratic() {
        // Minimize f(w) = w² from w=1 with repeated push/apply cycles.
        let mut ps = ParameterServerGroup::new(
            &[(1, 1)],
            1,
            AdamParams { lr: 0.1, ..Default::default() },
            1,
        );
        let start = ps.pull(0).0.get(0, 0);
        for _ in 0..200 {
            let w = ps.pull(0).0.get(0, 0);
            ps.push(&[(Matrix::from_vec(1, 1, vec![2.0 * w]), vec![0.0])]);
            ps.apply_update();
        }
        let end = ps.pull(0).0.get(0, 0);
        assert!(end.abs() < 0.05, "start {start}, end {end} not near 0");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn push_rejects_wrong_shape() {
        let mut ps = group();
        ps.push(&[(Matrix::zeros(2, 2), vec![0.0; 3]), (Matrix::zeros(3, 2), vec![0.0; 2])]);
    }
}

impl ParameterServerGroup {
    /// Persists the current weights (not the optimizer state) to `path`
    /// using the wire codec: one `(W, b)` pair per layer.
    pub fn save_weights(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        for lp in &self.layers {
            crate::codec::put_matrix(&mut buf, &lp.w);
            let bias = Matrix::from_vec(1, lp.b.len(), lp.b.clone());
            crate::codec::put_matrix(&mut buf, &bias);
        }
        std::fs::write(path, buf)?;
        Ok(())
    }

    /// Restores weights saved by [`Self::save_weights`].
    ///
    /// Fails when the file's layer shapes do not match this group's.
    pub fn load_weights(&mut self, path: &std::path::Path) -> Result<(), CheckpointError> {
        let buf = std::fs::read(path)?;
        let count = u32::from_le_bytes(read_array(&buf, 0, "layer count")?) as usize;
        if count != self.layers.len() {
            return Err(CheckpointError::LayerCount { found: count, expected: self.layers.len() });
        }
        let mut slice = &buf[4..];
        let mut weights = Vec::with_capacity(count);
        for _ in 0..count {
            let w = crate::codec::get_matrix(&mut slice)?;
            let b = crate::codec::get_matrix(&mut slice)?;
            weights.push((w, b.into_vec()));
        }
        for (lp, (w, b)) in self.layers.iter().zip(&weights) {
            if w.shape() != lp.w.shape() || b.len() != lp.b.len() {
                return Err(CheckpointError::ShapeMismatch);
            }
        }
        self.set_weights(&weights);
        Ok(())
    }

    /// Serializes the complete optimizer state — weights, biases, Adam
    /// first/second moments, pending gradient accumulators, the Adam step
    /// counter and pending push count — so a restored group continues
    /// training bit-identically to an uninterrupted one. (Contrast with
    /// [`Self::save_weights`], which persists only the inference state.)
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.step.to_le_bytes());
        buf.extend_from_slice(&(self.pushes_since_update as u64).to_le_bytes());
        buf.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        let put_vec = |buf: &mut Vec<u8>, v: &[f32]| {
            crate::codec::put_matrix(buf, &Matrix::from_vec(1, v.len(), v.to_vec()));
        };
        for lp in &self.layers {
            crate::codec::put_matrix(&mut buf, &lp.w);
            put_vec(&mut buf, &lp.b);
            crate::codec::put_matrix(&mut buf, &lp.m_w);
            crate::codec::put_matrix(&mut buf, &lp.v_w);
            put_vec(&mut buf, &lp.m_b);
            put_vec(&mut buf, &lp.v_b);
            crate::codec::put_matrix(&mut buf, &lp.grad_w);
            put_vec(&mut buf, &lp.grad_b);
        }
        buf
    }

    /// Restores state captured by [`Self::state_bytes`].
    ///
    /// Fails when the snapshot's layer shapes do not match this group's.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let step = u64::from_le_bytes(read_array(bytes, 0, "Adam step counter")?);
        let pushes = u64::from_le_bytes(read_array(bytes, 8, "pending push count")?) as usize;
        let count = u32::from_le_bytes(read_array(bytes, 16, "layer count")?) as usize;
        if count != self.layers.len() {
            return Err(CheckpointError::LayerCount { found: count, expected: self.layers.len() });
        }
        let mut slice = &bytes[20..];
        let mut restored = Vec::with_capacity(count);
        for _ in 0..count {
            let w = crate::codec::get_matrix(&mut slice)?;
            let b = crate::codec::get_matrix(&mut slice)?.into_vec();
            let m_w = crate::codec::get_matrix(&mut slice)?;
            let v_w = crate::codec::get_matrix(&mut slice)?;
            let m_b = crate::codec::get_matrix(&mut slice)?.into_vec();
            let v_b = crate::codec::get_matrix(&mut slice)?.into_vec();
            let grad_w = crate::codec::get_matrix(&mut slice)?;
            let grad_b = crate::codec::get_matrix(&mut slice)?.into_vec();
            restored.push(LayerParams { w, b, m_w, v_w, m_b, v_b, grad_w, grad_b });
        }
        for (lp, new) in self.layers.iter().zip(&restored) {
            if new.w.shape() != lp.w.shape() || new.b.len() != lp.b.len() {
                return Err(CheckpointError::ShapeMismatch);
            }
        }
        self.step = step;
        self.pushes_since_update = pushes;
        self.layers = restored;
        Ok(())
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ecgraph-ckpt-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_round_trips() {
        let ps = ParameterServerGroup::new(&[(4, 3), (3, 2)], 2, AdamParams::default(), 7);
        let path = tmp("roundtrip.bin");
        ps.save_weights(&path).unwrap();
        let mut other = ParameterServerGroup::new(&[(4, 3), (3, 2)], 2, AdamParams::default(), 99);
        assert_ne!(other.pull(0).0, ps.pull(0).0);
        other.load_weights(&path).unwrap();
        assert_eq!(other.pull(0).0, ps.pull(0).0);
        assert_eq!(other.pull(1).1, ps.pull(1).1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn full_state_round_trip_resumes_bit_identically() {
        // Train a few steps, snapshot, train more; a group restored from
        // the snapshot and fed the same gradients must match exactly —
        // this requires the Adam moments and step counter, not just the
        // weights.
        let shapes = [(4, 3), (3, 2)];
        let grads = |s: f32| {
            vec![(Matrix::filled(4, 3, s), vec![s; 3]), (Matrix::filled(3, 2, s), vec![s; 2])]
        };
        let mut ps = ParameterServerGroup::new(&shapes, 2, AdamParams::default(), 7);
        for i in 0..5 {
            ps.push(&grads(0.1 * i as f32));
            ps.apply_update();
        }
        let snapshot = ps.state_bytes();
        let mut restored = ParameterServerGroup::new(&shapes, 2, AdamParams::default(), 99);
        restored.restore_state(&snapshot).unwrap();
        for i in 0..5 {
            let g = grads(0.05 * i as f32);
            ps.push(&g);
            ps.apply_update();
            restored.push(&g);
            restored.apply_update();
        }
        assert_eq!(ps.pull(0).0, restored.pull(0).0);
        assert_eq!(ps.pull(1).1, restored.pull(1).1);

        // Weights-only restore diverges once moments matter.
        let mut weights_only = ParameterServerGroup::new(&shapes, 2, AdamParams::default(), 99);
        let path = tmp("weights-only.bin");
        ps.save_weights(&path).unwrap();
        weights_only.load_weights(&path).unwrap();
        std::fs::remove_file(path).ok();
        let g = grads(0.2);
        ps.push(&g);
        ps.apply_update();
        weights_only.push(&g);
        weights_only.apply_update();
        assert_ne!(ps.pull(0).0, weights_only.pull(0).0);
    }

    #[test]
    fn restore_state_rejects_mismatch() {
        let ps = ParameterServerGroup::new(&[(4, 3)], 1, AdamParams::default(), 1);
        let snap = ps.state_bytes();
        let mut other = ParameterServerGroup::new(&[(4, 3), (3, 2)], 1, AdamParams::default(), 1);
        assert!(other.restore_state(&snap).is_err());
        let mut wrong_shape = ParameterServerGroup::new(&[(5, 3)], 1, AdamParams::default(), 1);
        assert!(wrong_shape.restore_state(&snap).is_err());
        let mut ok = ParameterServerGroup::new(&[(4, 3)], 1, AdamParams::default(), 2);
        assert!(ok.restore_state(&snap[..10]).is_err(), "truncated snapshot must fail");
        assert!(ok.restore_state(&snap).is_ok());
    }

    #[test]
    fn load_rejects_layer_mismatch() {
        let ps = ParameterServerGroup::new(&[(4, 3)], 1, AdamParams::default(), 1);
        let path = tmp("mismatch.bin");
        ps.save_weights(&path).unwrap();
        let mut other = ParameterServerGroup::new(&[(4, 3), (3, 2)], 1, AdamParams::default(), 1);
        assert!(other.load_weights(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let ps = ParameterServerGroup::new(&[(4, 3)], 1, AdamParams::default(), 1);
        let path = tmp("shape.bin");
        ps.save_weights(&path).unwrap();
        let mut other = ParameterServerGroup::new(&[(5, 3)], 1, AdamParams::default(), 1);
        assert!(other.load_weights(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, [1, 2, 3]).unwrap();
        let mut ps = ParameterServerGroup::new(&[(2, 2)], 1, AdamParams::default(), 1);
        assert!(ps.load_weights(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
